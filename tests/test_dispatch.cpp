/// \file test_dispatch.cpp
/// \brief Differential verification of the adaptive multi-backend
/// dispatcher (sim/dispatch.hpp): circuit analysis, tableau ->
/// statevector conversion, routed simulation vs. the pure statevector
/// pipeline, fallback behavior, and the counts-level sampler.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "test_helpers.hpp"

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

namespace qclab::sim {
namespace {

using namespace qclab::qgates;

/// EXPECT that two states match up to one global phase: the phase is
/// aligned on the largest reference amplitude, then compared entrywise.
template <typename T, typename StateA, typename StateB>
void expectStatePhaseNear(const StateA& reference, const StateB& state,
                          T tolerance = test::tol<T>()) {
  ASSERT_EQ(reference.size(), state.size());
  std::size_t anchor = 0;
  for (std::size_t i = 1; i < reference.size(); ++i) {
    if (std::abs(reference[i]) > std::abs(reference[anchor])) anchor = i;
  }
  ASSERT_GT(std::abs(reference[anchor]), T(0.1));
  ASSERT_GT(std::abs(state[anchor]), T(1e-3))
      << "states have different support";
  std::complex<T> phase = reference[anchor] / state[anchor];
  phase /= std::abs(phase);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_LE(std::abs(reference[i] - phase * state[i]), tolerance)
        << "amplitude " << i << " differs beyond global phase";
  }
}

/// EXPECT that a dispatched simulation reproduces the statevector
/// reference: same branch tree (results in order), matching
/// probabilities, and per-branch states equal up to global phase.
template <typename T>
void expectSimulationsMatch(const Simulation<T>& reference,
                            const Simulation<T>& dispatched,
                            T tolerance = test::tol<T>()) {
  ASSERT_EQ(reference.nbBranches(), dispatched.nbBranches());
  for (std::size_t b = 0; b < reference.nbBranches(); ++b) {
    EXPECT_EQ(reference.result(b), dispatched.result(b)) << "branch " << b;
    EXPECT_NEAR(reference.probability(b), dispatched.probability(b),
                static_cast<double>(tolerance))
        << "branch " << b;
    expectStatePhaseNear<T>(reference.branches()[b].state,
                            dispatched.branches()[b].state, tolerance);
  }
}

/// Random Clifford generator mirroring the stabilizer test suite, plus
/// optional controlState-0 controls and value-Clifford rotations.
template <typename T>
void addRandomCliffords(QCircuit<T>& circuit, int length, random::Rng& rng) {
  const int n = circuit.nbQubits();
  auto qubit = [&]() { return static_cast<int>(rng.uniformInt(n)); };
  auto pair = [&]() {
    const int a = qubit();
    int b = qubit();
    while (b == a) b = qubit();
    return std::pair<int, int>{a, b};
  };
  const T half = static_cast<T>(M_PI_2);
  for (int i = 0; i < length; ++i) {
    switch (rng.uniformInt(n > 1 ? 16 : 10)) {
      case 0: circuit.push_back(Hadamard<T>(qubit())); break;
      case 1: circuit.push_back(SGate<T>(qubit())); break;
      case 2: circuit.push_back(SdgGate<T>(qubit())); break;
      case 3: circuit.push_back(PauliX<T>(qubit())); break;
      case 4: circuit.push_back(PauliY<T>(qubit())); break;
      case 5: circuit.push_back(PauliZ<T>(qubit())); break;
      case 6: circuit.push_back(SX<T>(qubit())); break;
      case 7: circuit.push_back(RotationY<T>(qubit(), half)); break;
      case 8: circuit.push_back(RotationX<T>(qubit(), half)); break;
      case 9:
        circuit.push_back(Phase<T>(qubit(), half));
        break;
      case 10: {
        const auto [a, b] = pair();
        circuit.push_back(
            CX<T>(a, b, static_cast<int>(rng.uniformInt(2))));
        break;
      }
      case 11: {
        const auto [a, b] = pair();
        circuit.push_back(CZ<T>(a, b));
        break;
      }
      case 12: {
        const auto [a, b] = pair();
        circuit.push_back(SWAP<T>(a, b));
        break;
      }
      case 13: {
        const auto [a, b] = pair();
        circuit.push_back(iSWAP<T>(a, b));
        break;
      }
      case 14: {
        const auto [a, b] = pair();
        circuit.push_back(
            RotationZZ<T>(std::min(a, b), std::max(a, b), half));
        break;
      }
      default: {
        const auto [a, b] = pair();
        circuit.push_back(CY<T>(a, b));
        break;
      }
    }
  }
}

template <typename T>
SimulateOptions dispatchOptions(DispatchMode mode, bool fusion = false) {
  SimulateOptions options;
  options.dispatch = mode;
  options.dispatchOptions.minCliffordPrefixOps = 0;
  options.fusion = fusion;
  return options;
}

// ---- circuit analysis ----------------------------------------------------

TEST(Dispatch, AnalyzerCensusPrefixAndFraction) {
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  QCircuit<double> inner(2, 1);  // nested sub-circuit, offset 1
  inner.push_back(CZ<double>(0, 1));
  circuit.push_back(inner);
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Barrier<double>(0, 2));
  circuit.push_back(TGate<double>(2));  // first non-Clifford op
  circuit.push_back(Hadamard<double>(2));
  circuit.push_back(Reset<double>(1));

  const auto analysis = analyzeCircuit(circuit);
  EXPECT_EQ(analysis.nbQubits, 3);
  EXPECT_EQ(analysis.ops.size(), 8u);  // sub-circuit flattened away
  EXPECT_EQ(analysis.nbGates, 5u);
  EXPECT_EQ(analysis.nbCliffordGates, 4u);
  EXPECT_EQ(analysis.nbMeasurements, 1u);
  EXPECT_EQ(analysis.nbResets, 1u);
  EXPECT_EQ(analysis.cliffordPrefixOps, 5u);  // up to and incl. barrier
  EXPECT_FALSE(analysis.fullyClifford);
  EXPECT_DOUBLE_EQ(analysis.cliffordFraction, 4.0 / 5.0);
  EXPECT_EQ(analysis.census.at("measure"), 1u);
  EXPECT_EQ(analysis.census.at("reset"), 1u);
  EXPECT_EQ(analysis.census.at("barrier"), 1u);
  EXPECT_EQ(analysis.census.at("H"), 2u);
  // The nested CZ carries the accumulated offset of its sub-circuit.
  EXPECT_EQ(analysis.ops[2].offset, 1);
}

TEST(Dispatch, AnalyzerFullyCliffordCircuit) {
  auto ghz = algorithms::ghz<double>(4);
  const auto analysis = analyzeCircuit(ghz);
  EXPECT_TRUE(analysis.fullyClifford);
  EXPECT_EQ(analysis.cliffordPrefixOps, analysis.ops.size());
  EXPECT_DOUBLE_EQ(analysis.cliffordFraction, 1.0);
}

// ---- tableau -> statevector conversion (satellite 2) ---------------------

TEST(Dispatch, ConvertGhzBitExact) {
  for (int n = 2; n <= 6; ++n) {
    stabilizer::Tableau tableau(n);
    tableau.h(0);
    for (int q = 1; q < n; ++q) tableau.cx(q - 1, q);
    const auto state = tableauToStatevector<double>(tableau);

    auto circuit = algorithms::ghz<double>(n);
    const auto reference =
        circuit.simulate(std::string(static_cast<std::size_t>(n), '0'));
    ASSERT_EQ(reference.nbBranches(), 1u);
    const auto& expected = reference.branches()[0].state;
    ASSERT_EQ(state.size(), expected.size());
    for (std::size_t i = 0; i < state.size(); ++i) {
      EXPECT_EQ(state[i].real(), expected[i].real()) << "n=" << n << " i=" << i;
      EXPECT_EQ(state[i].imag(), expected[i].imag()) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Dispatch, ConvertRingGraphStateBitExact) {
  // 4-qubit ring graph state: H on all, CZ on ring edges.  Exercises
  // rank-n conversion with sign rows from the CZ entangling pattern.
  const int n = 4;
  stabilizer::Tableau tableau(n);
  QCircuit<double> circuit(n);
  for (int q = 0; q < n; ++q) {
    tableau.h(q);
    circuit.push_back(Hadamard<double>(q));
  }
  for (int q = 0; q < n; ++q) {
    tableau.cz(q, (q + 1) % n);
    circuit.push_back(CZ<double>(q, (q + 1) % n));
  }
  const auto state = tableauToStatevector<double>(tableau);
  const auto reference = circuit.simulate("0000");
  const auto& expected = reference.branches()[0].state;
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_EQ(state[i].real(), expected[i].real()) << i;
    EXPECT_EQ(state[i].imag(), expected[i].imag()) << i;
  }
}

TEST(Dispatch, ConvertYEigenstatesBitExact) {
  // +Y = S H |0>, -Y = Sdg H |0>: exercises the i / -i phase tracking.
  for (const bool plus : {true, false}) {
    stabilizer::Tableau tableau(1);
    tableau.h(0);
    if (plus) tableau.s(0);
    else tableau.sdg(0);
    const auto state = tableauToStatevector<double>(tableau);

    QCircuit<double> circuit(1);
    circuit.push_back(Hadamard<double>(0));
    if (plus) circuit.push_back(SGate<double>(0));
    else circuit.push_back(SdgGate<double>(0));
    const auto reference = circuit.simulate("0");
    const auto& expected = reference.branches()[0].state;
    for (std::size_t i = 0; i < state.size(); ++i) {
      EXPECT_EQ(state[i].real(), expected[i].real()) << i;
      EXPECT_EQ(state[i].imag(), expected[i].imag()) << i;
    }
  }
}

TEST(Dispatch, ConvertSignRowsComputationalStates) {
  // X flips push "-" signs into the stabilizer rows; the conversion must
  // reproduce every computational basis state exactly.
  const int n = 3;
  for (util::index_t bits = 0; bits < (util::index_t{1} << n); ++bits) {
    stabilizer::Tableau tableau(n);
    for (int q = 0; q < n; ++q) {
      if (util::getBit(bits, util::bitPosition(q, n))) tableau.x(q);
    }
    const auto state = tableauToStatevector<double>(tableau);
    for (util::index_t i = 0; i < state.size(); ++i) {
      EXPECT_EQ(state[i], (i == bits ? std::complex<double>(1, 0)
                                     : std::complex<double>(0, 0)));
    }
  }
}

TEST(Dispatch, ConvertRandomCliffordStatesFloatAndDouble) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    random::Rng rng(seed);
    const int n = 1 + static_cast<int>(rng.uniformInt(5));
    QCircuit<double> circuit(n);
    addRandomCliffords(circuit, 25, rng);

    stabilizer::Tableau tableau(n);
    for (const auto& object : circuit) {
      stabilizer::detail::applyGate(
          tableau, static_cast<const qgates::QGate<double>&>(*object), 0);
    }
    const auto state = tableauToStatevector<double>(tableau);
    const auto reference =
        circuit.simulate(std::string(static_cast<std::size_t>(n), '0'));
    expectStatePhaseNear<double>(reference.branches()[0].state, state);
  }
}

// ---- routed simulation vs. statevector (tentpole + satellite 1) ----------

TEST(Dispatch, FullyCliffordRouteMatchesStatevector) {
  const obs::Metrics& m = obs::metrics();
  const std::uint64_t routedBefore =
      m.dispatchRoutes(DispatchRoute::kStabilizer);
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(CX<double>(1, 2));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  circuit.push_back(Measurement<double>(2));

  const auto reference = circuit.simulate("000");
  const auto dispatched =
      circuit.simulate("000", dispatchOptions<double>(DispatchMode::kAuto));
  expectSimulationsMatch(reference, dispatched);
  if (obs::kEnabled) {
    EXPECT_EQ(m.dispatchRoutes(DispatchRoute::kStabilizer), routedBefore + 1);
  }
}

TEST(Dispatch, HybridConversionMatchesStatevector) {
  const obs::Metrics& m = obs::metrics();
  const std::uint64_t hybridBefore = m.dispatchRoutes(DispatchRoute::kHybrid);
  const std::uint64_t conversionsBefore = m.dispatchConversions();
  // Clifford prefix (GHZ + measurement fork), then T and H suffix.
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(CX<double>(1, 2));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(TGate<double>(1));
  circuit.push_back(Hadamard<double>(2));
  circuit.push_back(Measurement<double>(2));

  const auto reference = circuit.simulate("000");
  const auto dispatched =
      circuit.simulate("000", dispatchOptions<double>(DispatchMode::kAuto));
  expectSimulationsMatch(reference, dispatched);
  if (obs::kEnabled) {
    EXPECT_EQ(m.dispatchRoutes(DispatchRoute::kHybrid), hybridBefore + 1);
    // Two branches existed at the conversion point (the measurement fork).
    EXPECT_EQ(m.dispatchConversions(), conversionsBefore + 2);
  }
}

TEST(Dispatch, AutoShortPrefixFallsBackToStatevector) {
  QCircuit<double> circuit(2);
  circuit.push_back(TGate<double>(0));  // non-Clifford from op 0
  circuit.push_back(Hadamard<double>(1));
  // The reference run below also counts a statevector route, so take it
  // before sampling the counter.
  const auto reference = circuit.simulate("00");

  const obs::Metrics& m = obs::metrics();
  const std::uint64_t statevectorBefore =
      m.dispatchRoutes(DispatchRoute::kStatevector);
  SimulateOptions options;
  options.dispatch = DispatchMode::kAuto;  // default min prefix of 4
  const auto dispatched = circuit.simulate("00", options);
  expectSimulationsMatch(reference, dispatched);
  if (obs::kEnabled) {
    EXPECT_EQ(m.dispatchRoutes(DispatchRoute::kStatevector),
              statevectorBefore + 1);
  }
}

TEST(Dispatch, ForcedStabilizerOnNonCliffordStartStillMatches) {
  // kStabilizer with an immediately non-Clifford circuit: the prefix is
  // empty, so the tableau converts |bits> straight away and the whole
  // circuit runs as suffix.
  QCircuit<double> circuit(2);
  circuit.push_back(TGate<double>(0));
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  const auto dispatched = circuit.simulate(
      "10", dispatchOptions<double>(DispatchMode::kStabilizer));
  expectSimulationsMatch(circuit.simulate("10"), dispatched);
}

TEST(Dispatch, ControlStateZeroControls) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1, 0));  // fires on control |0>
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  const auto dispatched = circuit.simulate(
      "00", dispatchOptions<double>(DispatchMode::kStabilizer));
  expectSimulationsMatch(circuit.simulate("00"), dispatched);
}

TEST(Dispatch, ResetsForkAndMatchStatevector) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Reset<double>(0));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  const auto dispatched = circuit.simulate(
      "00", dispatchOptions<double>(DispatchMode::kAuto));
  expectSimulationsMatch(circuit.simulate("00"), dispatched);
}

TEST(Dispatch, XAndYBasisMeasurements) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(SGate<double>(0));
  circuit.push_back(Hadamard<double>(1));
  circuit.push_back(Measurement<double>(0, 'y'));  // deterministic +Y
  circuit.push_back(Measurement<double>(1, 'x'));  // deterministic +X
  const auto dispatched = circuit.simulate(
      "00", dispatchOptions<double>(DispatchMode::kAuto));
  expectSimulationsMatch(circuit.simulate("00"), dispatched);
  ASSERT_EQ(dispatched.nbBranches(), 1u);
  EXPECT_EQ(dispatched.result(0), "00");
}

/// Differential fuzz (satellite 1): random Clifford (+T) circuits with
/// interleaved measurements, compared branch-for-branch against the pure
/// statevector pipeline, across scalar types and fusion settings.
template <typename T>
void fuzzOnce(std::uint64_t seed, bool withT, bool fusion) {
  random::Rng rng(seed);
  const int n = 1 + static_cast<int>(rng.uniformInt(6));
  QCircuit<T> circuit(n);
  const int segments = 2 + static_cast<int>(rng.uniformInt(2));
  for (int s = 0; s < segments; ++s) {
    addRandomCliffords(circuit, 8, rng);
    if (withT && s == segments - 1) {
      // Non-Clifford tail: T plus more Cliffords after the conversion.
      circuit.push_back(
          qgates::TGate<T>(static_cast<int>(rng.uniformInt(n))));
      addRandomCliffords(circuit, 4, rng);
    }
    circuit.push_back(
        Measurement<T>(static_cast<int>(rng.uniformInt(n))));
  }
  const auto reference =
      circuit.simulate(std::string(static_cast<std::size_t>(n), '0'),
                       SimulateOptions{});
  const auto dispatched = circuit.simulate(
      std::string(static_cast<std::size_t>(n), '0'),
      dispatchOptions<T>(DispatchMode::kAuto, fusion));
  // Float tolerance is driven by the statevector kernels' rounding, not
  // the tableau (which is exact): loosen proportionally.
  expectSimulationsMatch<T>(reference, dispatched,
                            withT ? T(100) * test::tol<T>() : test::tol<T>());
}

TEST(Dispatch, DifferentialFuzzCliffordDouble) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    fuzzOnce<double>(seed, false, false);
  }
}

TEST(Dispatch, DifferentialFuzzCliffordFloat) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    fuzzOnce<float>(seed, false, false);
  }
}

TEST(Dispatch, DifferentialFuzzCliffordPlusTDouble) {
  for (std::uint64_t seed = 21; seed <= 32; ++seed) {
    fuzzOnce<double>(seed, true, false);
  }
}

TEST(Dispatch, DifferentialFuzzCliffordPlusTFloat) {
  for (std::uint64_t seed = 21; seed <= 28; ++seed) {
    fuzzOnce<float>(seed, true, false);
  }
}

TEST(Dispatch, DifferentialFuzzWithFusion) {
  for (std::uint64_t seed = 41; seed <= 48; ++seed) {
    fuzzOnce<double>(seed, true, true);
  }
}

// ---- seeded determinism (satellite 3) ------------------------------------

TEST(Dispatch, RoutedSimulationIsDeterministic) {
  // The dispatcher explores both outcomes of every 50/50 measurement
  // instead of sampling, so repeated runs are bit-identical.
  QCircuit<double> circuit(4);
  random::Rng rng(7);
  addRandomCliffords(circuit, 20, rng);
  for (int q = 0; q < 4; ++q) circuit.push_back(Measurement<double>(q));
  const auto options = dispatchOptions<double>(DispatchMode::kAuto);
  const auto first = circuit.simulate("0000", options);
  const auto second = circuit.simulate("0000", options);
  ASSERT_EQ(first.nbBranches(), second.nbBranches());
  for (std::size_t b = 0; b < first.nbBranches(); ++b) {
    EXPECT_EQ(first.result(b), second.result(b));
    EXPECT_EQ(first.probability(b), second.probability(b));
    EXPECT_EQ(first.branches()[b].state, second.branches()[b].state);
  }
}

TEST(Dispatch, SampleCountsSeededDeterminism) {
  const int n = 40;
  QCircuit<double> circuit(n);
  circuit.push_back(Hadamard<double>(0));
  for (int q = 1; q < n; ++q) circuit.push_back(CX<double>(q - 1, q));
  for (int q = 0; q < n; ++q) circuit.push_back(Measurement<double>(q));
  const auto first = dispatchSampleCounts(circuit, 600, 1234);
  const auto second = dispatchSampleCounts(circuit, 600, 1234);
  EXPECT_EQ(first, second);
  const auto other = dispatchSampleCounts(circuit, 600, 4321);
  EXPECT_NE(first, other);  // 600 coin flips: astronomically unlikely equal
}

TEST(Dispatch, SampleCountsThreadCountInvariant) {
  // Fixed shot chunks map to fixed rng jump streams, so the histogram
  // cannot depend on how chunks are scheduled over threads.
  QCircuit<double> circuit(5);
  random::Rng rng(11);
  addRandomCliffords(circuit, 25, rng);
  for (int q = 0; q < 5; ++q) circuit.push_back(Measurement<double>(q));
#ifdef QCLAB_HAS_OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(1);
  const auto single = dispatchSampleCounts(circuit, 1500, 99);
  omp_set_num_threads(8);
  const auto parallel = dispatchSampleCounts(circuit, 1500, 99);
  omp_set_num_threads(before);
  EXPECT_EQ(single, parallel);
#else
  const auto first = dispatchSampleCounts(circuit, 1500, 99);
  const auto second = dispatchSampleCounts(circuit, 1500, 99);
  EXPECT_EQ(first, second);
#endif
}

TEST(Dispatch, SampleCountsMatchesSimulateDistribution) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  const auto histogram = dispatchSampleCounts(circuit, 2000, 5);
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_NEAR(static_cast<double>(histogram.at("00")) / 2000.0, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(histogram.at("11")) / 2000.0, 0.5, 0.05);
}

TEST(Dispatch, SampleCountsScalesBeyondStatevectorReach) {
  // 128 qubits: far beyond any statevector, instant on the tableau.
  const int n = 128;
  QCircuit<double> circuit(n);
  circuit.push_back(Hadamard<double>(0));
  for (int q = 1; q < n; ++q) circuit.push_back(CX<double>(q - 1, q));
  for (int q = 0; q < n; ++q) circuit.push_back(Measurement<double>(q));
  const auto histogram = dispatchSampleCounts(circuit, 64, 3);
  std::uint64_t total = 0;
  for (const auto& [outcome, count] : histogram) {
    EXPECT_TRUE(outcome == std::string(n, '0') ||
                outcome == std::string(n, '1'))
        << outcome;
    total += count;
  }
  EXPECT_EQ(total, 64u);
}

// ---- typed unsupported-gate errors & fallback (satellite 4) --------------

TEST(Dispatch, SampleCountsRejectsNonCliffordTyped) {
  QCircuit<double> circuit(1);
  circuit.push_back(TGate<double>(0));
  EXPECT_THROW(dispatchSampleCounts(circuit, 10, 1), UnsupportedGateError);
  // The typed error stays catchable as the base InvalidArgumentError.
  EXPECT_THROW(dispatchSampleCounts(circuit, 10, 1), InvalidArgumentError);
}

TEST(Dispatch, UnsupportedGateProbeIsExactlyTheExecutor) {
  // isCliffordGate must agree with applyGate: value-Clifford angles pass,
  // everything else raises the typed error.
  EXPECT_TRUE(stabilizer::isCliffordGate(RotationY<double>(0, M_PI_2)));
  EXPECT_TRUE(stabilizer::isCliffordGate(CPhase<double>(0, 1, M_PI)));
  EXPECT_FALSE(stabilizer::isCliffordGate(TGate<double>(0)));
  EXPECT_FALSE(stabilizer::isCliffordGate(RotationY<double>(0, 0.3)));
  EXPECT_FALSE(stabilizer::isCliffordGate(CPhase<double>(0, 1, M_PI_2)));
  stabilizer::Tableau tableau(1);
  EXPECT_THROW(
      stabilizer::detail::applyGate(tableau, TGate<double>(0), 0),
      UnsupportedGateError);
}

TEST(Dispatch, EnvOverrideRoutesThroughStabilizer) {
  const obs::Metrics& m = obs::metrics();
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));

  ::setenv("QCLAB_DISPATCH", "stabilizer", 1);
  const std::uint64_t routedBefore =
      m.dispatchRoutes(DispatchRoute::kStabilizer);
  const auto dispatched = circuit.simulate("00");  // default options
  if (obs::kEnabled) {
    EXPECT_EQ(m.dispatchRoutes(DispatchRoute::kStabilizer), routedBefore + 1);
  }

  ::setenv("QCLAB_DISPATCH", "statevector", 1);
  const std::uint64_t statevectorBefore =
      m.dispatchRoutes(DispatchRoute::kStatevector);
  const auto reference = circuit.simulate(
      "00", dispatchOptions<double>(DispatchMode::kStabilizer));
  if (obs::kEnabled) {
    EXPECT_EQ(m.dispatchRoutes(DispatchRoute::kStatevector),
              statevectorBefore + 1);
  }
  ::unsetenv("QCLAB_DISPATCH");

  expectSimulationsMatch(reference, dispatched);
}

/// Gate-coverage sweep (satellite 4): every value-Clifford gate the
/// catalog can express applies on the tableau and matches the
/// statevector, sandwiched in an entangling context.
TEST(Dispatch, GateCoverageValueCliffords) {
  using G = std::unique_ptr<qgates::QGate<double>>;
  std::vector<G> gates;
  const double q1 = M_PI_2, q2 = M_PI, q3 = 3 * M_PI_2;
  gates.push_back(std::make_unique<Identity<double>>(0));
  gates.push_back(std::make_unique<SXdg<double>>(1));
  gates.push_back(std::make_unique<SdgGate<double>>(2));
  for (const double theta : {q1, q2, q3, -q1, -q2}) {
    gates.push_back(std::make_unique<RotationX<double>>(0, theta));
    gates.push_back(std::make_unique<RotationY<double>>(1, theta));
    gates.push_back(std::make_unique<RotationZ<double>>(2, theta));
    gates.push_back(std::make_unique<RotationZZ<double>>(0, 1, theta));
    gates.push_back(std::make_unique<RotationXX<double>>(1, 2, theta));
    gates.push_back(std::make_unique<RotationYY<double>>(0, 2, theta));
  }
  for (const double theta : {q1, q2, -q1}) {
    gates.push_back(std::make_unique<Phase<double>>(1, theta));
  }
  gates.push_back(std::make_unique<CPhase<double>>(0, 1, M_PI));
  gates.push_back(std::make_unique<CPhase<double>>(1, 2, M_PI, 0));
  gates.push_back(std::make_unique<CRotationX<double>>(0, 2, M_PI));
  gates.push_back(std::make_unique<CRotationY<double>>(2, 1, M_PI));
  gates.push_back(std::make_unique<CRotationZ<double>>(1, 0, M_PI));
  gates.push_back(std::make_unique<CY<double>>(0, 1));
  gates.push_back(std::make_unique<CY<double>>(1, 2, 0));
  gates.push_back(std::make_unique<iSWAPdg<double>>(0, 2));
  gates.push_back(std::make_unique<MCX<double>>(std::vector<int>{0}, 2,
                                                std::vector<int>{0}));
  gates.push_back(std::make_unique<MCZ<double>>(std::vector<int>{1}, 2,
                                                std::vector<int>{1}));

  for (const auto& gate : gates) {
    ASSERT_TRUE(stabilizer::isCliffordGate(*gate))
        << qgates::gateKindLabel(*gate);
    QCircuit<double> circuit(3);
    circuit.push_back(Hadamard<double>(0));
    circuit.push_back(Hadamard<double>(1));
    circuit.push_back(CX<double>(0, 2));
    circuit.push_back(gate->clone());
    circuit.push_back(CZ<double>(1, 2));
    const auto dispatched = circuit.simulate(
        "000", dispatchOptions<double>(DispatchMode::kStabilizer));
    expectSimulationsMatch(circuit.simulate("000"), dispatched);
  }
}

TEST(Dispatch, GateCoverageRejectsNearMisses) {
  // Angles a hair off the Clifford grid must NOT silently snap.
  EXPECT_FALSE(stabilizer::isCliffordGate(RotationY<double>(0, M_PI_2 + 1e-3)));
  EXPECT_FALSE(stabilizer::isCliffordGate(Phase<double>(0, M_PI_2 + 1e-3)));
  EXPECT_FALSE(
      stabilizer::isCliffordGate(RotationZZ<double>(0, 1, M_PI_2 + 1e-3)));
  // Two-control MCX (Toffoli) is not Clifford.
  EXPECT_FALSE(stabilizer::isCliffordGate(
      MCX<double>(std::vector<int>{0, 1}, 2, std::vector<int>{1, 1})));
  // ...but the dispatcher still yields correct results by conversion.
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Hadamard<double>(1));
  circuit.push_back(MCX<double>(std::vector<int>{0, 1}, 2,
                                std::vector<int>{1, 1}));
  circuit.push_back(Measurement<double>(2));
  const auto dispatched = circuit.simulate(
      "000", dispatchOptions<double>(DispatchMode::kAuto));
  expectSimulationsMatch(circuit.simulate("000"), dispatched);
}

}  // namespace
}  // namespace qclab::sim

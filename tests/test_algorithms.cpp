/// \file test_algorithms.cpp
/// \brief Unit tests for the circuit-builder library: states, QFT, phase
/// estimation, Grover, repetition code, tomography.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab::algorithms {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

TEST(States, BellPair) {
  const auto circuit = bellPair<double>();
  const auto state = circuit.simulate("00").state(0);
  qclab::test::expectStateNear(state, bellState<double>());
}

TEST(States, GhzAmplitudes) {
  for (int n = 2; n <= 6; ++n) {
    const auto circuit = ghz<double>(n);
    const auto state =
        circuit.simulate(std::string(static_cast<std::size_t>(n), '0'))
            .state(0);
    const double h = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(state.front() - C(h)), 0.0, 1e-13);
    EXPECT_NEAR(std::abs(state.back() - C(h)), 0.0, 1e-13);
    for (std::size_t i = 1; i + 1 < state.size(); ++i) {
      EXPECT_NEAR(std::abs(state[i]), 0.0, 1e-13);
    }
  }
  EXPECT_THROW(ghz<double>(1), InvalidArgumentError);
}

class QftSweep : public ::testing::TestWithParam<int> {};

TEST_P(QftSweep, MatrixEqualsDft) {
  const int n = GetParam();
  qclab::test::expectMatrixNear(qft<double>(n).matrix(), dftMatrix<double>(n),
                                1e-11);
}

TEST_P(QftSweep, InverseUndoesQft) {
  const int n = GetParam();
  QCircuit<double> both(n);
  both.push_back(qft<double>(n));
  both.push_back(inverseQft<double>(n));
  qclab::test::expectMatrixNear(both.matrix(),
                                M::identity(std::size_t{1} << n), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QftSweep, ::testing::Range(1, 7));

TEST(Qft, WithoutSwapsIsBitReversedDft) {
  const int n = 3;
  const auto noSwaps = qft<double>(n, false).matrix();
  const auto dft = dftMatrix<double>(n);
  // Row j of the no-swap QFT equals row bitreverse(j) of the DFT.
  auto reverseBits = [&](std::size_t x) {
    std::size_t reversed = 0;
    for (int b = 0; b < n; ++b) {
      reversed = (reversed << 1) | ((x >> b) & 1);
    }
    return reversed;
  };
  for (std::size_t j = 0; j < (std::size_t{1} << n); ++j) {
    for (std::size_t k = 0; k < (std::size_t{1} << n); ++k) {
      EXPECT_NEAR(std::abs(noSwaps(reverseBits(j), k) - dft(j, k)), 0.0,
                  1e-11);
    }
  }
}

TEST(PhaseEstimation, ExactPhasesResolve) {
  // T gate on |1>: phi = 1/8 -> '001' with 3 counting qubits.
  const auto tGate = qgates::TGate<double>(0).matrix();
  auto circuit = phaseEstimation<double>(3, tGate);
  auto initial = dense::kron(basisState<double>("000"),
                             basisState<double>("1"));
  const auto simulation = circuit.simulate(initial);
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0), "001");
  EXPECT_NEAR(phaseFromBits(simulation.result(0)), 0.125, 1e-15);
}

TEST(PhaseEstimation, SGatePhase) {
  // S on |1>: phi = 1/4 -> '01' with 2 counting qubits.
  const auto sGate = qgates::SGate<double>(0).matrix();
  auto circuit = phaseEstimation<double>(2, sGate);
  auto initial = dense::kron(basisState<double>("00"),
                             basisState<double>("1"));
  const auto simulation = circuit.simulate(initial);
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0), "01");
}

TEST(PhaseEstimation, InexactPhaseConcentrates) {
  // Phase gate with phi = 0.3 (not a 3-bit fraction): the most likely
  // outcome is the closest 3-bit fraction; its probability dominates.
  const auto u = qgates::Phase<double>(0, 2.0 * M_PI * 0.3).matrix();
  auto circuit = phaseEstimation<double>(3, u);
  auto initial = dense::kron(basisState<double>("000"),
                             basisState<double>("1"));
  const auto simulation = circuit.simulate(initial);
  double best = 0.0;
  std::string bestResult;
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    if (simulation.probability(i) > best) {
      best = simulation.probability(i);
      bestResult = simulation.result(i);
    }
  }
  EXPECT_NEAR(phaseFromBits(bestResult), 0.3, 1.0 / 16.0);
  EXPECT_GT(best, 0.4);
}

TEST(PhaseEstimation, PhaseFromBits) {
  EXPECT_EQ(phaseFromBits("000"), 0.0);
  EXPECT_EQ(phaseFromBits("100"), 0.5);
  EXPECT_EQ(phaseFromBits("001"), 0.125);
  EXPECT_EQ(phaseFromBits("111"), 0.875);
}

TEST(PhaseEstimation, Validation) {
  EXPECT_THROW(phaseEstimation<double>(0, M::identity(2)),
               InvalidArgumentError);
  EXPECT_THROW(phaseEstimation<double>(2, M::identity(4)),
               InvalidArgumentError);
  EXPECT_THROW(phaseEstimation<double>(2, M{{1, 1}, {0, 1}}),
               InvalidArgumentError);
}

TEST(Grover, IterationCounts) {
  EXPECT_EQ(groverIterations(2), 1);
  EXPECT_EQ(groverIterations(3), 2);
  EXPECT_EQ(groverIterations(4), 3);
  EXPECT_EQ(groverIterations(5), 4);
  EXPECT_EQ(groverIterations(10), 25);
}

TEST(Grover, OracleFlipsOnlyMarkedPhase) {
  const auto oracle = groverOracle<double>("10");
  const auto m = oracle.matrix();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      const C expected = i != j ? C(0) : (i == 2 ? C(-1) : C(1));
      EXPECT_NEAR(std::abs(m(i, j) - expected), 0.0, 1e-13)
          << i << "," << j;
    }
  }
}

TEST(Grover, PaperDiffuserEquivalentUpToPhase) {
  // The paper's 2-qubit diffuser (H,H,Z,Z,CZ,H,H) equals ours up to a
  // global phase of -1.
  QCircuit<double> paper(2);
  paper.push_back(qgates::Hadamard<double>(0));
  paper.push_back(qgates::Hadamard<double>(1));
  paper.push_back(qgates::PauliZ<double>(0));
  paper.push_back(qgates::PauliZ<double>(1));
  paper.push_back(qgates::CZ<double>(0, 1));
  paper.push_back(qgates::Hadamard<double>(0));
  paper.push_back(qgates::Hadamard<double>(1));
  const auto ours = groverDiffuser<double>(2).matrix();
  const auto theirs = paper.matrix();
  // Compare |entries|: global phase only.
  double maxDiff = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      maxDiff = std::max(maxDiff,
                         std::abs(std::abs(ours(i, j)) - std::abs(theirs(i, j))));
    }
  }
  EXPECT_LT(maxDiff, 1e-13);
}

TEST(Grover, Validation) {
  EXPECT_THROW(groverOracle<double>("1"), InvalidArgumentError);
  EXPECT_THROW(groverOracle<double>("1x"), InvalidArgumentError);
  EXPECT_THROW(groverDiffuser<double>(1), InvalidArgumentError);
}

TEST(RepetitionCode, EncoderProducesLogicalState) {
  random::Rng rng(5);
  const auto v = qclab::test::randomState<double>(1, rng);
  const auto encoder = repetitionEncoder<double>(3);
  auto initial = dense::kron(v, basisState<double>("00"));
  const auto state = encoder.simulate(initial).state(0);
  EXPECT_NEAR(std::abs(state[0] - v[0]), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(state[7] - v[1]), 0.0, 1e-13);
}

TEST(RepetitionCode, ExpectedSyndromes) {
  EXPECT_EQ(expectedSyndrome(-1), "00");
  EXPECT_EQ(expectedSyndrome(0), "11");
  EXPECT_EQ(expectedSyndrome(1), "10");
  EXPECT_EQ(expectedSyndrome(2), "01");
}

TEST(RepetitionCode, Validation) {
  EXPECT_THROW(repetitionCodeDemo<double>(3), InvalidArgumentError);
  EXPECT_THROW(repetitionCodeDemo<double>(-2), InvalidArgumentError);
  EXPECT_THROW(repetitionEncoder<double>(2), InvalidArgumentError);
}

TEST(Tomography, ExactForLargeShotCounts) {
  random::Rng rng(6);
  for (int trial = 0; trial < 3; ++trial) {
    const auto v = qclab::test::randomState<double>(1, rng);
    const auto result = tomography1Qubit(v, 200000, 7 + trial);
    const auto trueRho = density::densityMatrix(v);
    EXPECT_LT(density::traceDistance(trueRho, result.estimate), 0.01);
  }
}

TEST(Tomography, Validation) {
  EXPECT_THROW(tomography1Qubit<double>({C(1), C(0), C(0), C(0)}, 100),
               InvalidArgumentError);
  EXPECT_THROW(tomography1Qubit<double>({C(1), C(0)}, 0),
               InvalidArgumentError);
}

class GroverSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(GroverSizeSweep, OptimalIterationsSucceedWithHighProbability) {
  const int n = GetParam();
  const std::string marked = util::indexToBitstring(
      static_cast<util::index_t>(n * 3 % (1 << n)), n);
  const auto circuit = grover<double>(marked);
  const auto simulation =
      circuit.simulate(std::string(static_cast<std::size_t>(n), '0'));
  double success = 0.0;
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    if (simulation.result(i) == marked) success = simulation.probability(i);
  }
  EXPECT_GT(success, 0.8) << "n=" << n << " marked=" << marked;
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroverSizeSweep, ::testing::Range(2, 8));

}  // namespace
}  // namespace qclab::algorithms

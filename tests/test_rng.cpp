/// \file test_rng.cpp
/// \brief Unit tests for the xoshiro256** generator and sampling routines.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "qclab/random/rng.hpp"
#include "qclab/stabilizer/tableau.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::random {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.seed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[i]);
}

TEST(Rng, ZeroSeedWorks) {
  Rng rng(0);
  // splitmix64 seeding guarantees a nonzero state even for seed 0.
  bool anyNonZero = false;
  for (int i = 0; i < 10; ++i) anyNonZero |= rng() != 0;
  EXPECT_TRUE(anyNonZero);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(6);
    ASSERT_LT(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces of the die appear
}

TEST(Rng, NormalMoments) {
  Rng rng(6);
  double sum = 0.0, sumSq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumSq / n, 1.0, 0.05);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(7);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(8);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
}

TEST(Rng, BinomialMeanAndVariance) {
  Rng rng(9);
  const std::uint64_t trials = 1000;
  const double p = 0.3;
  const int reps = 500;
  double sum = 0.0, sumSq = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double x = static_cast<double>(rng.binomial(trials, p));
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / reps;
  const double variance = sumSq / reps - mean * mean;
  EXPECT_NEAR(mean, trials * p, 5.0);
  EXPECT_NEAR(variance, trials * p * (1 - p), 60.0);
}

TEST(Rng, MultinomialSumsToTrials) {
  Rng rng(10);
  const std::vector<double> weights = {0.1, 0.2, 0.3, 0.4};
  const auto counts = rng.multinomial(10000, weights);
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 10000u);
  EXPECT_NEAR(static_cast<double>(counts[3]) / 10000.0, 0.4, 0.03);
}

TEST(Rng, MultinomialZeroWeightCategoryGetsNothing) {
  Rng rng(11);
  const auto counts = rng.multinomial(5000, {0.5, 0.0, 0.5});
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[0] + counts[2], 5000u);
}

TEST(Rng, MultinomialValidation) {
  Rng rng(12);
  EXPECT_THROW(rng.multinomial(10, {}), qclab::InvalidArgumentError);
  EXPECT_THROW(rng.multinomial(10, {0.0, 0.0}), qclab::InvalidArgumentError);
  EXPECT_THROW(rng.multinomial(10, {1.0, -1.0}), qclab::InvalidArgumentError);
}

TEST(Rng, JumpProducesDisjointStream) {
  Rng a(13);
  Rng b(13);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, JumpStreamsMatchManualJumps) {
  // jumpStreams(seed, count) is the engine's determinism contract:
  // stream 0 is Rng(seed), stream i+1 is stream i after one jump().
  const auto streams = Rng::jumpStreams(21, 4);
  ASSERT_EQ(streams.size(), 4u);
  Rng manual(21);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    Rng copy = streams[s];
    Rng reference = manual;
    for (int i = 0; i < 16; ++i) EXPECT_EQ(copy(), reference());
    manual.jump();
  }
}

TEST(Rng, JumpStreamsAreMutuallyDisjoint) {
  // Property test backing the per-trajectory streams: draws from 8
  // consecutive jump streams never collide within a 256-draw window.
  // xoshiro256** jump() skips 2^128 outputs, so any collision here
  // would signal a broken jump polynomial.
  constexpr std::size_t kStreams = 8;
  constexpr int kDraws = 256;
  auto streams = Rng::jumpStreams(2026, kStreams);
  std::set<std::uint64_t> seen;
  for (auto& stream : streams) {
    for (int i = 0; i < kDraws; ++i) {
      const auto value = stream();
      EXPECT_TRUE(seen.insert(value).second)
          << "collision across jump streams at draw " << i;
    }
  }
  EXPECT_EQ(seen.size(), kStreams * kDraws);
}

TEST(Rng, JumpStreamsZeroCountIsEmpty) {
  EXPECT_TRUE(Rng::jumpStreams(1, 0).empty());
}

TEST(Rng, JumpStreamsDriveTableauMeasurementSampler) {
  // The dispatch sampler assigns one jump stream per shot chunk; the
  // outcome sequence a stream feeds into Tableau::measure must be
  // reproducible from the same seed and disjoint across streams.
  const auto collect = [](Rng rng) {
    std::string outcomes;
    for (int shot = 0; shot < 64; ++shot) {
      stabilizer::Tableau tableau(3);
      tableau.h(0);
      tableau.cx(0, 1);
      tableau.h(2);
      for (int q = 0; q < 3; ++q) {
        outcomes += static_cast<char>('0' + tableau.measure(q, rng));
      }
    }
    return outcomes;
  };
  const auto streams = Rng::jumpStreams(77, 3);
  const auto again = Rng::jumpStreams(77, 3);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    EXPECT_EQ(collect(streams[s]), collect(again[s])) << "stream " << s;
  }
  // Different streams sample different measurement records (3 streams x
  // 192 fair coin flips: collisions are astronomically unlikely).
  EXPECT_NE(collect(streams[0]), collect(streams[1]));
  EXPECT_NE(collect(streams[1]), collect(streams[2]));
}

class MultinomialSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MultinomialSweep, CountsSumAndStayProportional) {
  const auto [categories, trials] = GetParam();
  Rng rng(99);
  std::vector<double> weights(static_cast<std::size_t>(categories));
  for (auto& w : weights) w = rng.uniform(0.1, 1.0);
  double total = 0.0;
  for (double w : weights) total += w;

  const auto counts = rng.multinomial(trials, weights);
  std::uint64_t sum = 0;
  for (auto c : counts) sum += c;
  EXPECT_EQ(sum, trials);
  if (trials >= 10000) {
    for (std::size_t k = 0; k < weights.size(); ++k) {
      EXPECT_NEAR(static_cast<double>(counts[k]) / trials, weights[k] / total,
                  0.05);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultinomialSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{100},
                                         std::uint64_t{10000})));

}  // namespace
}  // namespace qclab::random

/// \file test_gates1.cpp
/// \brief Unit tests for the fixed single-qubit gates, plus parameterized
/// sweeps over the whole 1-qubit gate catalog (unitarity, inverse, clone,
/// diagonal consistency, QASM names, draw items).

#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "qclab/qgates/qgates.hpp"
#include "test_helpers.hpp"

namespace qclab::qgates {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;
using GateFactory = std::function<std::unique_ptr<QGate1<double>>(int)>;

struct GateCase {
  std::string name;
  GateFactory make;
};

std::vector<GateCase> gateCatalog() {
  return {
      {"Identity", [](int q) { return std::make_unique<Identity<double>>(q); }},
      {"PauliX", [](int q) { return std::make_unique<PauliX<double>>(q); }},
      {"PauliY", [](int q) { return std::make_unique<PauliY<double>>(q); }},
      {"PauliZ", [](int q) { return std::make_unique<PauliZ<double>>(q); }},
      {"Hadamard", [](int q) { return std::make_unique<Hadamard<double>>(q); }},
      {"S", [](int q) { return std::make_unique<SGate<double>>(q); }},
      {"Sdg", [](int q) { return std::make_unique<SdgGate<double>>(q); }},
      {"T", [](int q) { return std::make_unique<TGate<double>>(q); }},
      {"Tdg", [](int q) { return std::make_unique<TdgGate<double>>(q); }},
      {"SX", [](int q) { return std::make_unique<SX<double>>(q); }},
      {"SXdg", [](int q) { return std::make_unique<SXdg<double>>(q); }},
      {"Phase", [](int q) { return std::make_unique<Phase<double>>(q, 0.7); }},
      {"RX", [](int q) { return std::make_unique<RotationX<double>>(q, 1.1); }},
      {"RY", [](int q) { return std::make_unique<RotationY<double>>(q, -0.4); }},
      {"RZ", [](int q) { return std::make_unique<RotationZ<double>>(q, 2.2); }},
      {"U2", [](int q) { return std::make_unique<U2<double>>(q, 0.3, 1.4); }},
      {"U3",
       [](int q) { return std::make_unique<U3<double>>(q, 0.5, -0.2, 0.9); }},
  };
}

class Gate1Sweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  GateCase gateCase_ = gateCatalog()[GetParam()];
};

TEST_P(Gate1Sweep, IsUnitary) {
  const auto gate = gateCase_.make(0);
  EXPECT_TRUE(gate->matrix().isUnitary(1e-14)) << gateCase_.name;
}

TEST_P(Gate1Sweep, InverseIsMatrixInverse) {
  const auto gate = gateCase_.make(2);
  const auto inverse = gate->inverse();
  qclab::test::expectMatrixNear(inverse->matrix() * gate->matrix(),
                                M::identity(2));
  EXPECT_EQ(inverse->qubits(), gate->qubits()) << gateCase_.name;
}

TEST_P(Gate1Sweep, CloneIsIndependentDeepCopy) {
  auto gate = gateCase_.make(1);
  const auto cloned = gate->clone();
  qclab::test::expectMatrixNear(
      static_cast<const QGate<double>&>(*cloned).matrix(), gate->matrix());
  EXPECT_EQ(cloned->qubits(), gate->qubits());
  gate->setQubit(3);
  EXPECT_EQ(cloned->qubits(), std::vector<int>{1});  // clone unaffected
}

TEST_P(Gate1Sweep, DiagonalFlagMatchesMatrix) {
  const auto gate = gateCase_.make(0);
  const auto m = gate->matrix();
  const bool matrixDiagonal =
      std::abs(m(0, 1)) < 1e-15 && std::abs(m(1, 0)) < 1e-15;
  EXPECT_EQ(gate->isDiagonal(), matrixDiagonal) << gateCase_.name;
}

TEST_P(Gate1Sweep, QubitManagement) {
  auto gate = gateCase_.make(5);
  EXPECT_EQ(gate->qubit(), 5);
  EXPECT_EQ(gate->nbQubits(), 1);
  EXPECT_EQ(gate->qubits(), std::vector<int>{5});
  gate->setQubit(2);
  EXPECT_EQ(gate->qubit(), 2);
  gate->shiftQubits(3);
  EXPECT_EQ(gate->qubit(), 5);
  EXPECT_THROW(gate->shiftQubits(-6), InvalidArgumentError);
  EXPECT_THROW(gateCase_.make(-1), InvalidArgumentError);
}

TEST_P(Gate1Sweep, QasmStatementWellFormed) {
  const auto gate = gateCase_.make(4);
  std::ostringstream stream;
  gate->toQASM(stream, 2);
  const std::string qasm = stream.str();
  EXPECT_NE(qasm.find("q[6]"), std::string::npos) << qasm;  // offset applied
  EXPECT_EQ(qasm.back(), '\n');
  EXPECT_NE(qasm.find(';'), std::string::npos);
}

TEST_P(Gate1Sweep, DrawItemCoversQubit) {
  const auto gate = gateCase_.make(3);
  std::vector<io::DrawItem> items;
  gate->appendDrawItems(items, 1);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].boxTop, 4);
  EXPECT_EQ(items[0].boxBottom, 4);
  EXPECT_FALSE(items[0].label.empty());
}

INSTANTIATE_TEST_SUITE_P(Catalog, Gate1Sweep,
                         ::testing::Range<std::size_t>(0, 17));

TEST(Gates1, HadamardMatrix) {
  const auto h = Hadamard<double>(0).matrix();
  const double invSqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(h(0, 0) - C(invSqrt2)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(h(1, 1) - C(-invSqrt2)), 0.0, 1e-15);
}

TEST(Gates1, SSquaredIsZ) {
  const auto s = SGate<double>(0).matrix();
  qclab::test::expectMatrixNear(s * s, dense::pauliZ<double>());
}

TEST(Gates1, TSquaredIsS) {
  const auto t = TGate<double>(0).matrix();
  qclab::test::expectMatrixNear(t * t, SGate<double>(0).matrix());
}

TEST(Gates1, SxSquaredIsX) {
  const auto sx = SX<double>(0).matrix();
  qclab::test::expectMatrixNear(sx * sx, dense::pauliX<double>());
}

TEST(Gates1, HadamardConjugatesXandZ) {
  const auto h = Hadamard<double>(0).matrix();
  qclab::test::expectMatrixNear(h * dense::pauliX<double>() * h,
                                dense::pauliZ<double>());
  qclab::test::expectMatrixNear(h * dense::pauliZ<double>() * h,
                                dense::pauliX<double>());
}

TEST(Gates1, PhaseSpecialValues) {
  // Phase(pi/2) == S, Phase(pi/4) == T, Phase(pi) == Z.
  qclab::test::expectMatrixNear(Phase<double>(0, M_PI_2).matrix(),
                                SGate<double>(0).matrix());
  qclab::test::expectMatrixNear(Phase<double>(0, M_PI_4).matrix(),
                                TGate<double>(0).matrix());
  qclab::test::expectMatrixNear(Phase<double>(0, M_PI).matrix(),
                                dense::pauliZ<double>());
}

TEST(Gates1, QasmNames) {
  EXPECT_EQ(Hadamard<double>(0).qasmName(), "h");
  EXPECT_EQ(PauliX<double>(0).qasmName(), "x");
  EXPECT_EQ(SdgGate<double>(0).qasmName(), "sdg");
  EXPECT_EQ(TGate<double>(0).qasmName(), "t");
  EXPECT_EQ(SX<double>(0).qasmName(), "sx");
  EXPECT_EQ(Phase<double>(0, 0.5).qasmName().substr(0, 2), "p(");
}

}  // namespace
}  // namespace qclab::qgates

/// \file test_dense.cpp
/// \brief Unit tests for the dense complex matrix substrate.

#include <gtest/gtest.h>

#include "qclab/dense/matrix.hpp"
#include "qclab/dense/ops.hpp"
#include "test_helpers.hpp"

namespace qclab::dense {
namespace {

using C = std::complex<double>;
using M = Matrix<double>;

TEST(DenseMatrix, ConstructionAndAccess) {
  M m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.isSquare());
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), C(0));
  m(1, 2) = C(3, 4);
  EXPECT_EQ(m(1, 2), C(3, 4));
}

TEST(DenseMatrix, InitializerList) {
  M m{{1, 2}, {3, 4}};
  EXPECT_EQ(m(0, 0), C(1));
  EXPECT_EQ(m(0, 1), C(2));
  EXPECT_EQ(m(1, 0), C(3));
  EXPECT_EQ(m(1, 1), C(4));
  EXPECT_THROW((M{{1, 2}, {3}}), qclab::InvalidArgumentError);
}

TEST(DenseMatrix, Identity) {
  const auto id = M::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(id(i, j), i == j ? C(1) : C(0));
}

TEST(DenseMatrix, Arithmetic) {
  const M a{{1, 2}, {3, 4}};
  const M b{{5, 6}, {7, 8}};
  const auto sum = a + b;
  EXPECT_EQ(sum(0, 0), C(6));
  EXPECT_EQ(sum(1, 1), C(12));
  const auto diff = b - a;
  EXPECT_EQ(diff(0, 1), C(4));
  const auto scaled = a * C(2);
  EXPECT_EQ(scaled(1, 0), C(6));
  EXPECT_THROW(a + M(3, 3), qclab::InvalidArgumentError);
}

TEST(DenseMatrix, MatMul) {
  const M a{{1, 2}, {3, 4}};
  const M b{{5, 6}, {7, 8}};
  const auto product = a * b;
  EXPECT_EQ(product(0, 0), C(19));
  EXPECT_EQ(product(0, 1), C(22));
  EXPECT_EQ(product(1, 0), C(43));
  EXPECT_EQ(product(1, 1), C(50));
  // Identity is neutral.
  qclab::test::expectMatrixNear(a * M::identity(2), a);
  qclab::test::expectMatrixNear(M::identity(2) * a, a);
}

TEST(DenseMatrix, ApplyMatchesMatMul) {
  const M a{{1, C(0, 2)}, {3, 4}};
  const std::vector<C> x = {C(1, 1), C(2, -1)};
  const auto y = a.apply(x);
  EXPECT_EQ(y[0], C(1, 1) + C(0, 2) * C(2, -1));
  EXPECT_EQ(y[1], C(3) * C(1, 1) + C(4) * C(2, -1));
}

TEST(DenseMatrix, TransposeConjDagger) {
  const M a{{C(1, 1), C(2, -3)}, {C(0, 5), C(4)}};
  const auto t = a.transpose();
  EXPECT_EQ(t(0, 1), C(0, 5));
  const auto c = a.conj();
  EXPECT_EQ(c(0, 0), C(1, -1));
  const auto d = a.dagger();
  EXPECT_EQ(d(1, 0), C(2, 3));
  EXPECT_EQ(d(0, 1), C(0, -5));
  // dagger == conj(transpose).
  qclab::test::expectMatrixNear(d, a.transpose().conj());
}

TEST(DenseMatrix, TraceAndNorms) {
  const M a{{C(1, 2), C(0)}, {C(0), C(3, -1)}};
  EXPECT_EQ(a.trace(), C(4, 1));
  EXPECT_NEAR(a.normF(), std::sqrt(1. + 4. + 9. + 1.), 1e-14);
  EXPECT_NEAR(a.normMax(), std::abs(C(3, -1)), 1e-14);
  EXPECT_THROW(M(2, 3).trace(), qclab::InvalidArgumentError);
}

TEST(DenseMatrix, UnitaryAndHermitianChecks) {
  EXPECT_TRUE(pauliX<double>().isUnitary(1e-14));
  EXPECT_TRUE(pauliY<double>().isUnitary(1e-14));
  EXPECT_TRUE(pauliX<double>().isHermitian(1e-14));
  const M notUnitary{{1, 1}, {0, 1}};
  EXPECT_FALSE(notUnitary.isUnitary(1e-10));
  EXPECT_FALSE(notUnitary.isHermitian(1e-10));
  EXPECT_FALSE(M(2, 3).isUnitary(1e-10));
}

TEST(DenseOps, KronBasics) {
  const auto k = kron(pauliX<double>(), M::identity(2));
  // X (x) I = [[0, I], [I, 0]].
  EXPECT_EQ(k.rows(), 4u);
  EXPECT_EQ(k(0, 2), C(1));
  EXPECT_EQ(k(1, 3), C(1));
  EXPECT_EQ(k(2, 0), C(1));
  EXPECT_EQ(k(3, 1), C(1));
  EXPECT_EQ(k(0, 0), C(0));
}

TEST(DenseOps, KronMixedProductProperty) {
  // (A (x) B)(C (x) D) == (AC) (x) (BD).
  random::Rng rng(1);
  const auto a = qclab::test::randomUnitary1<double>(rng);
  const auto b = qclab::test::randomUnitary1<double>(rng);
  const auto c = qclab::test::randomUnitary1<double>(rng);
  const auto d = qclab::test::randomUnitary1<double>(rng);
  qclab::test::expectMatrixNear(kron(a, b) * kron(c, d),
                                kron(a * c, b * d));
}

TEST(DenseOps, KronVectors) {
  const std::vector<C> a = {C(1), C(2)};
  const std::vector<C> b = {C(0, 1), C(3)};
  const auto k = kron(a, b);
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[0], C(0, 1));
  EXPECT_EQ(k[1], C(3));
  EXPECT_EQ(k[2], C(0, 2));
  EXPECT_EQ(k[3], C(6));
}

TEST(DenseOps, DirectSum) {
  const auto s = directSum(pauliZ<double>(), pauliX<double>());
  EXPECT_EQ(s.rows(), 4u);
  EXPECT_EQ(s(0, 0), C(1));
  EXPECT_EQ(s(1, 1), C(-1));
  EXPECT_EQ(s(2, 3), C(1));
  EXPECT_EQ(s(0, 2), C(0));
}

TEST(DenseOps, InnerOuterNorm) {
  const std::vector<C> a = {C(1), C(0, 1)};
  const std::vector<C> b = {C(0, 1), C(1)};
  // <a|b> = conj(1)*i + conj(i)*1 = i - i = 0.
  EXPECT_EQ(inner(a, b), C(0));
  EXPECT_NEAR(normSquared(a), 2.0, 1e-14);
  const auto o = outer(a, a);
  EXPECT_EQ(o(0, 1), C(1) * std::conj(C(0, 1)));
  EXPECT_EQ(o(1, 0), C(0, 1));
}

TEST(DenseOps, EqualUpToPhase) {
  const std::vector<C> a = {C(1, 0), C(0, 1)};
  std::vector<C> b = a;
  const C phase = std::polar(1.0, 1.234);
  for (auto& x : b) x *= phase;
  EXPECT_TRUE(equalUpToPhase(a, b, 1e-12));
  b[0] += C(0.1, 0);
  EXPECT_FALSE(equalUpToPhase(a, b, 1e-12));
  // Different sizes never match.
  EXPECT_FALSE(equalUpToPhase(a, std::vector<C>{C(1)}, 1e-12));
}

TEST(DenseOps, PauliAlgebra) {
  // X Y = i Z, Y Z = i X, Z X = i Y, X^2 = Y^2 = Z^2 = I.
  const auto x = pauliX<double>();
  const auto y = pauliY<double>();
  const auto z = pauliZ<double>();
  qclab::test::expectMatrixNear(x * y, z * C(0, 1));
  qclab::test::expectMatrixNear(y * z, x * C(0, 1));
  qclab::test::expectMatrixNear(z * x, y * C(0, 1));
  qclab::test::expectMatrixNear(x * x, M::identity(2));
  qclab::test::expectMatrixNear(y * y, M::identity(2));
  qclab::test::expectMatrixNear(z * z, M::identity(2));
}

class KronDimensionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KronDimensionSweep, ShapesAndUnitarity) {
  const auto [ra, rb] = GetParam();
  // Unitary (x) unitary is unitary; dims multiply.
  random::Rng rng(static_cast<std::uint64_t>(ra * 10 + rb));
  M a = M::identity(static_cast<std::size_t>(ra));
  M b = M::identity(static_cast<std::size_t>(rb));
  // Perturb with a unitary pattern: permute columns cyclically.
  const auto k = kron(a, b);
  EXPECT_EQ(k.rows(), static_cast<std::size_t>(ra * rb));
  EXPECT_TRUE(k.isUnitary(1e-13));
}

INSTANTIATE_TEST_SUITE_P(Dims, KronDimensionSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 8)));

}  // namespace
}  // namespace qclab::dense

/// \file test_sparse.cpp
/// \brief Unit tests for the CSR sparse matrix substrate.

#include <gtest/gtest.h>

#include "qclab/sparse/csr.hpp"
#include "test_helpers.hpp"

namespace qclab::sparse {
namespace {

using C = std::complex<double>;
using Csr = CsrMatrix<double>;
using M = dense::Matrix<double>;

Csr randomSparse(std::size_t rows, std::size_t cols, std::size_t nnz,
                 std::uint64_t seed) {
  random::Rng rng(seed);
  std::vector<Triplet<double>> triplets;
  for (std::size_t k = 0; k < nnz; ++k) {
    triplets.push_back({rng.uniformInt(rows), rng.uniformInt(cols),
                        C(rng.normal(), rng.normal())});
  }
  return Csr::fromTriplets(rows, cols, std::move(triplets));
}

TEST(Csr, EmptyAndZero) {
  Csr empty;
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.nnz(), 0u);
  Csr zero(3, 4);
  EXPECT_EQ(zero.rows(), 3u);
  EXPECT_EQ(zero.cols(), 4u);
  EXPECT_EQ(zero.nnz(), 0u);
  EXPECT_EQ(zero.at(2, 3), C(0));
}

TEST(Csr, FromTripletsSortsColumns) {
  auto m = Csr::fromTriplets(2, 4, {{0, 3, C(3)}, {0, 1, C(1)}, {1, 0, C(5)}});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.at(0, 1), C(1));
  EXPECT_EQ(m.at(0, 3), C(3));
  EXPECT_EQ(m.at(1, 0), C(5));
  EXPECT_EQ(m.at(0, 0), C(0));
  // Column indices ascending within each row.
  const auto& cols = m.colInd();
  const auto& rowPtr = m.rowPtr();
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t k = rowPtr[r] + 1; k < rowPtr[r + 1]; ++k) {
      EXPECT_LT(cols[k - 1], cols[k]);
    }
  }
}

TEST(Csr, DuplicateTripletsAreSummed) {
  auto m = Csr::fromTriplets(2, 2, {{0, 0, C(1)}, {0, 0, C(2)}, {1, 1, C(3)}});
  EXPECT_EQ(m.at(0, 0), C(3));
  EXPECT_EQ(m.nnz(), 2u);
}

TEST(Csr, OutOfBoundsTripletThrows) {
  EXPECT_THROW(Csr::fromTriplets(2, 2, {{2, 0, C(1)}}),
               qclab::InvalidArgumentError);
}

TEST(Csr, Identity) {
  const auto id = Csr::identity(4);
  EXPECT_EQ(id.nnz(), 4u);
  qclab::test::expectMatrixNear(id.toDense(), M::identity(4));
}

TEST(Csr, DenseRoundTrip) {
  M d{{1, 0, 2}, {0, 0, 0}, {C(0, 3), 4, 0}};
  const auto sparse = Csr::fromDense(d);
  EXPECT_EQ(sparse.nnz(), 4u);
  qclab::test::expectMatrixNear(sparse.toDense(), d);
}

TEST(Csr, ApplyMatchesDense) {
  const auto a = randomSparse(8, 8, 20, 1);
  random::Rng rng(2);
  std::vector<C> x(8);
  for (auto& value : x) value = C(rng.normal(), rng.normal());
  const auto ySparse = a.apply(x);
  const auto yDense = a.toDense().apply(x);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(ySparse[i] - yDense[i]), 0.0, 1e-12);
  }
}

TEST(Csr, ApplyDimensionMismatch) {
  const auto a = randomSparse(4, 6, 5, 3);
  EXPECT_THROW(a.apply(std::vector<C>(4)), qclab::InvalidArgumentError);
}

TEST(Csr, SpGemmMatchesDense) {
  const auto a = randomSparse(6, 5, 12, 4);
  const auto b = randomSparse(5, 7, 14, 5);
  const auto product = a * b;
  qclab::test::expectMatrixNear(product.toDense(), a.toDense() * b.toDense(),
                                1e-12);
}

TEST(Csr, SpGemmDimensionMismatch) {
  const auto a = randomSparse(4, 5, 6, 6);
  const auto b = randomSparse(4, 5, 6, 7);
  EXPECT_THROW(a * b, qclab::InvalidArgumentError);
}

TEST(Csr, KronMatchesDense) {
  const auto a = randomSparse(3, 2, 4, 8);
  const auto b = randomSparse(2, 4, 5, 9);
  const auto k = kron(a, b);
  EXPECT_EQ(k.rows(), 6u);
  EXPECT_EQ(k.cols(), 8u);
  qclab::test::expectMatrixNear(k.toDense(),
                                dense::kron(a.toDense(), b.toDense()), 1e-12);
}

TEST(Csr, KronWithIdentityPreservesStructure) {
  // I (x) A keeps A's nnz pattern in each diagonal block.
  const auto a = randomSparse(2, 2, 3, 10);
  const auto k = kron(Csr::identity(3), a);
  EXPECT_EQ(k.nnz(), 3 * a.nnz());
}

class CsrApplySweep : public ::testing::TestWithParam<int> {};

TEST_P(CsrApplySweep, LargeApplyMatchesDense) {
  const auto n = static_cast<std::size_t>(1) << GetParam();
  const auto a = randomSparse(n, n, 4 * n, 11 + GetParam());
  random::Rng rng(12);
  std::vector<C> x(n);
  for (auto& value : x) value = C(rng.normal(), rng.normal());
  const auto ySparse = a.apply(x);
  const auto yDense = a.toDense().apply(x);
  double maxDiff = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    maxDiff = std::max(maxDiff, std::abs(ySparse[i] - yDense[i]));
  }
  EXPECT_LT(maxDiff, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CsrApplySweep, ::testing::Values(2, 4, 6, 8));

}  // namespace
}  // namespace qclab::sparse

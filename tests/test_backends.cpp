/// \file test_backends.cpp
/// \brief Backend equivalence: the QCLAB sparse-kron path (paper §3.2), the
/// QCLAB++ kernel path, and the dense circuit unitary must agree on
/// randomized circuits — the core correctness net of the library.

#include <gtest/gtest.h>

#include "qclab/sim/backend.hpp"
#include "test_helpers.hpp"

namespace qclab::sim {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

TEST(ExtendedUnitary, HadamardMatchesKron) {
  // H on qubit 1 of 3: I (x) H (x) I.
  const qgates::Hadamard<double> h(1);
  const auto sparse = extendedUnitary(3, h);
  const auto expected = dense::kron(
      dense::kron(M::identity(2), h.matrix()), M::identity(2));
  qclab::test::expectMatrixNear(sparse.toDense(), expected);
}

TEST(ExtendedUnitary, EdgeQubits) {
  const qgates::PauliX<double> x0(0);
  qclab::test::expectMatrixNear(
      extendedUnitary(3, x0).toDense(),
      dense::kron(dense::pauliX<double>(), M::identity(4)));
  const qgates::PauliX<double> x2(2);
  qclab::test::expectMatrixNear(
      extendedUnitary(3, x2).toDense(),
      dense::kron(M::identity(4), dense::pauliX<double>()));
}

TEST(ExtendedUnitary, NonAdjacentControlledGate) {
  // CZ(0, 2) on 3 qubits: diag with -1 at |1x1>.
  const qgates::CZ<double> cz(0, 2);
  const auto dense = extendedUnitary(3, cz).toDense();
  for (std::size_t i = 0; i < 8; ++i) {
    const bool flip = (i & 0b101) == 0b101;
    EXPECT_NEAR(std::abs(dense(i, i) - (flip ? C(-1) : C(1))), 0.0, 1e-14);
  }
}

TEST(ExtendedUnitary, OffsetShiftsQubits) {
  const qgates::Hadamard<double> h(0);
  qclab::test::expectMatrixNear(
      extendedUnitary(3, h, /*offset=*/2).toDense(),
      extendedUnitary(3, qgates::Hadamard<double>(2)).toDense());
}

TEST(ExtendedUnitary, SparsityOfSingleQubitGate) {
  // I (x) U (x) I for a dense 2x2 U on n qubits has exactly 2^n * 2 / 2 = 2^n
  // entries per ... : 2 nonzeros per row -> 2^{n+1} total.
  const qgates::Hadamard<double> h(3);
  const auto sparse = extendedUnitary(8, h);
  EXPECT_EQ(sparse.nnz(), (std::size_t{1} << 8) * 2);
}

TEST(Backends, NamesAndDefault) {
  EXPECT_STREQ(KernelBackend<double>().name(), "kernel");
  EXPECT_STREQ(SparseKronBackend<double>().name(), "sparse-kron");
  EXPECT_STREQ(defaultBackend<double>().name(), "kernel");
}

/// Property test: for random circuits, all three execution paths agree.
class BackendEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BackendEquivalence, KernelSparseAndDenseAgree) {
  const auto [nbQubits, seed] = GetParam();
  const auto circuit =
      qclab::test::randomCircuit<double>(nbQubits, 25, seed);
  random::Rng rng(seed + 1000);
  const auto initial = qclab::test::randomState<double>(nbQubits, rng);

  const KernelBackend<double> kernel;
  const SparseKronBackend<double> sparse;

  const auto kernelState = circuit.simulate(initial, kernel).state(0);
  const auto sparseState = circuit.simulate(initial, sparse).state(0);
  const auto denseState = circuit.matrix().apply(initial);

  qclab::test::expectStateNear(kernelState, sparseState, 1e-11);
  qclab::test::expectStateNear(kernelState, denseState, 1e-11);
  EXPECT_NEAR(dense::norm2(kernelState), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, BackendEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(1, 2, 3, 4)));

/// Measurements must also agree across backends (branch probabilities).
TEST(Backends, MeasurementBranchesAgree) {
  for (int seed = 1; seed <= 5; ++seed) {
    auto circuit = qclab::test::randomCircuit<double>(3, 12, seed);
    circuit.push_back(Measurement<double>(0));
    circuit.push_back(Measurement<double>(2));
    const KernelBackend<double> kernel;
    const SparseKronBackend<double> sparse;
    const auto a = circuit.simulate("000", kernel);
    const auto b = circuit.simulate("000", sparse);
    ASSERT_EQ(a.nbBranches(), b.nbBranches());
    for (std::size_t i = 0; i < a.nbBranches(); ++i) {
      EXPECT_EQ(a.result(i), b.result(i));
      EXPECT_NEAR(a.probability(i), b.probability(i), 1e-12);
      qclab::test::expectStateNear(a.state(i), b.state(i), 1e-11);
    }
  }
}

}  // namespace
}  // namespace qclab::sim

/// \file test_measurement.cpp
/// \brief Unit tests for the Measurement and Reset objects themselves
/// (construction, basis handling, QASM, drawing).

#include <gtest/gtest.h>

#include <sstream>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

TEST(Measurement, DefaultsToZBasis) {
  const Measurement<double> m(1);
  EXPECT_EQ(m.basis(), Basis::kZ);
  EXPECT_EQ(m.qubit(), 1);
  EXPECT_EQ(m.nbQubits(), 1);
  EXPECT_EQ(m.qubits(), std::vector<int>{1});
  EXPECT_EQ(m.objectType(), ObjectType::kMeasurement);
  qclab::test::expectMatrixNear(m.basisVectors(), M::identity(2));
}

TEST(Measurement, CharBasisSelection) {
  EXPECT_EQ(Measurement<double>(0, 'x').basis(), Basis::kX);
  EXPECT_EQ(Measurement<double>(0, 'X').basis(), Basis::kX);
  EXPECT_EQ(Measurement<double>(0, 'y').basis(), Basis::kY);
  EXPECT_EQ(Measurement<double>(0, 'z').basis(), Basis::kZ);
  EXPECT_THROW(Measurement<double>(0, 'q'), InvalidArgumentError);
  EXPECT_THROW(Measurement<double>(-1), InvalidArgumentError);
}

TEST(Measurement, BasisVectorsAreUnitaryAndCorrect) {
  const double h = 1.0 / std::sqrt(2.0);
  const auto x = Measurement<double>(0, 'x').basisVectors();
  EXPECT_TRUE(x.isUnitary(1e-14));
  // Columns are |+> and |->.
  EXPECT_NEAR(std::abs(x(0, 0) - C(h)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(x(1, 1) - C(-h)), 0.0, 1e-14);

  const auto y = Measurement<double>(0, 'y').basisVectors();
  EXPECT_TRUE(y.isUnitary(1e-14));
  // Columns are (1, i)/sqrt(2) and (1, -i)/sqrt(2).
  EXPECT_NEAR(std::abs(y(1, 0) - C(0, h)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(y(1, 1) - C(0, -h)), 0.0, 1e-14);
}

TEST(Measurement, BasisChangeIsDaggerOfVectors) {
  const Measurement<double> m(0, 'y');
  qclab::test::expectMatrixNear(m.basisChangeMatrix(),
                                m.basisVectors().dagger());
}

TEST(Measurement, CustomBasisValidation) {
  const double h = 1.0 / std::sqrt(2.0);
  M good{{h, h}, {h, -h}};
  EXPECT_NO_THROW(Measurement<double>(0, good));
  EXPECT_EQ(Measurement<double>(0, good).basis(), Basis::kCustom);
  M bad{{1, 1}, {0, 1}};
  EXPECT_THROW(Measurement<double>(0, bad), InvalidArgumentError);
  EXPECT_THROW(Measurement<double>(0, M(3, 3)), InvalidArgumentError);
}

TEST(Measurement, QasmPerBasis) {
  std::ostringstream z;
  Measurement<double>(0).toQASM(z, 1);
  EXPECT_EQ(z.str(), "measure q[1] -> c[1];\n");

  std::ostringstream x;
  Measurement<double>(0, 'x').toQASM(x);
  EXPECT_EQ(x.str(), "h q[0];\nmeasure q[0] -> c[0];\n");

  std::ostringstream y;
  Measurement<double>(0, 'y').toQASM(y);
  EXPECT_EQ(y.str(), "sdg q[0];\nh q[0];\nmeasure q[0] -> c[0];\n");

  const double h = 1.0 / std::sqrt(2.0);
  Measurement<double> custom(0, M{{h, h}, {h, -h}});
  std::ostringstream sink;
  EXPECT_THROW(custom.toQASM(sink), InvalidArgumentError);
}

TEST(Measurement, DrawLabels) {
  std::vector<io::DrawItem> items;
  Measurement<double>(0).appendDrawItems(items);
  Measurement<double>(0, 'x').appendDrawItems(items);
  Measurement<double>(0, 'y').appendDrawItems(items);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].label, "M");
  EXPECT_EQ(items[1].label, "Mx");
  EXPECT_EQ(items[2].label, "My");
  EXPECT_EQ(items[0].kind, io::DrawItem::Kind::kMeasure);
}

TEST(Measurement, CloneAndShift) {
  Measurement<double> m(2, 'x');
  auto cloned = m.clone();
  EXPECT_EQ(cloned->qubits(), std::vector<int>{2});
  cloned->shiftQubits(3);
  EXPECT_EQ(cloned->qubits(), std::vector<int>{5});
  EXPECT_EQ(m.qubit(), 2);
}

TEST(Reset, Basics) {
  const Reset<double> reset(1);
  EXPECT_EQ(reset.qubit(), 1);
  EXPECT_EQ(reset.objectType(), ObjectType::kReset);
  EXPECT_THROW(Reset<double>(-1), InvalidArgumentError);
  std::ostringstream qasm;
  reset.toQASM(qasm, 1);
  EXPECT_EQ(qasm.str(), "reset q[2];\n");
  std::vector<io::DrawItem> items;
  reset.appendDrawItems(items);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].kind, io::DrawItem::Kind::kReset);
}

TEST(Barrier, Basics) {
  const Barrier<double> barrier(1, 3);
  EXPECT_EQ(barrier.nbQubits(), 3);
  EXPECT_EQ(barrier.qubits(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(barrier.objectType(), ObjectType::kBarrier);
  EXPECT_THROW(Barrier<double>(3, 1), InvalidArgumentError);
  std::ostringstream qasm;
  barrier.toQASM(qasm);
  EXPECT_EQ(qasm.str(), "barrier q[1], q[2], q[3];\n");
}

TEST(Barrier, IsSimulationNoOp) {
  QCircuit<double> withBarrier(2);
  withBarrier.push_back(qgates::Hadamard<double>(0));
  withBarrier.push_back(Barrier<double>(0, 1));
  withBarrier.push_back(qgates::CX<double>(0, 1));
  QCircuit<double> without(2);
  without.push_back(qgates::Hadamard<double>(0));
  without.push_back(qgates::CX<double>(0, 1));
  qclab::test::expectMatrixNear(withBarrier.matrix(), without.matrix());
}

}  // namespace
}  // namespace qclab

/// \file test_shape_hash.cpp
/// \brief Adversarial tests of QCircuit::shapeHash: circuits that differ
/// only in qubit count, gate targets, control layout, control state, or
/// gate kind must hash apart, while parameter (angle) changes must not
/// change the hash — two circuits share a fusion plan iff their shapes
/// match.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using namespace qclab::qgates;

TEST(ShapeHash, EqualForIdenticalCircuits) {
  QCircuit<double> a(3), b(3);
  for (auto* c : {&a, &b}) {
    c->push_back(Hadamard<double>(0));
    c->push_back(CX<double>(0, 1));
    c->push_back(RotationZ<double>(2, 0.4));
  }
  EXPECT_EQ(a.shapeHash(), b.shapeHash());
}

TEST(ShapeHash, InvariantUnderParameterChanges) {
  QCircuit<double> a(2), b(2);
  a.push_back(RotationX<double>(0, 0.1));
  a.push_back(CPhase<double>(0, 1, -2.0));
  b.push_back(RotationX<double>(0, 2.9));
  b.push_back(CPhase<double>(0, 1, 0.0));
  EXPECT_EQ(a.shapeHash(), b.shapeHash());

  // Rebinding in place does not move the hash either.
  const auto before = a.shapeHash();
  static_cast<RotationX<double>&>(a.objectAt(0)).setTheta(1.7);
  EXPECT_EQ(a.shapeHash(), before);
}

TEST(ShapeHash, SameGateSequenceDifferentQubitCounts) {
  // Identical object lists on registers of different width: the wider
  // register changes kernel strides, so the plans are NOT interchangeable.
  QCircuit<double> a(2), b(3);
  for (auto* c : {&a, &b}) {
    c->push_back(Hadamard<double>(0));
    c->push_back(CX<double>(0, 1));
  }
  EXPECT_NE(a.shapeHash(), b.shapeHash());
}

TEST(ShapeHash, ControlAndTargetSwapDiffer) {
  QCircuit<double> a(2), b(2);
  a.push_back(CX<double>(0, 1));
  b.push_back(CX<double>(1, 0));
  EXPECT_NE(a.shapeHash(), b.shapeHash());
}

TEST(ShapeHash, ControlStateDiffers) {
  QCircuit<double> a(2), b(2);
  a.push_back(CX<double>(0, 1, 1));
  b.push_back(CX<double>(0, 1, 0));
  EXPECT_NE(a.shapeHash(), b.shapeHash());
}

TEST(ShapeHash, GateKindDiffers) {
  // Same targets, same parameter, different rotation axis.
  QCircuit<double> a(1), b(1);
  a.push_back(RotationX<double>(0, 0.3));
  b.push_back(RotationY<double>(0, 0.3));
  EXPECT_NE(a.shapeHash(), b.shapeHash());
}

TEST(ShapeHash, GateOrderDiffers) {
  QCircuit<double> a(2), b(2);
  a.push_back(Hadamard<double>(0));
  a.push_back(PauliX<double>(1));
  b.push_back(PauliX<double>(1));
  b.push_back(Hadamard<double>(0));
  EXPECT_NE(a.shapeHash(), b.shapeHash());
}

TEST(ShapeHash, SubCircuitOffsetDiffers) {
  // The same sub-circuit anchored at different offsets addresses
  // different qubits.
  QCircuit<double> inner(1);
  inner.push_back(Hadamard<double>(0));

  QCircuit<double> a(3), b(3);
  QCircuit<double> atOffset0(1, 0), atOffset2(1, 2);
  atOffset0.push_back(Hadamard<double>(0));
  atOffset2.push_back(Hadamard<double>(0));
  a.push_back(atOffset0);
  b.push_back(atOffset2);
  EXPECT_NE(a.shapeHash(), b.shapeHash());
}

TEST(ShapeHash, FlatVersusNestedDiffer) {
  // H on qubit 0 directly vs. wrapped in a sub-circuit: the simulate
  // path produces the same state, but the structures are distinct and
  // hashing them apart is the conservative (safe) choice.
  QCircuit<double> flat(1);
  flat.push_back(Hadamard<double>(0));

  QCircuit<double> inner(1);
  inner.push_back(Hadamard<double>(0));
  QCircuit<double> nested(1);
  nested.push_back(inner);

  EXPECT_NE(flat.shapeHash(), nested.shapeHash());
}

TEST(ShapeHash, MatchesShapeGatesBatchMembership) {
  QCircuit<double> prototype(2);
  prototype.push_back(Hadamard<double>(0));
  prototype.push_back(RotationZZ<double>(0, 1, 0.2));

  QCircuit<double> member(2);
  member.push_back(Hadamard<double>(0));
  member.push_back(RotationZZ<double>(0, 1, -1.9));

  QCircuit<double> intruder(2);
  intruder.push_back(Hadamard<double>(1));
  intruder.push_back(RotationZZ<double>(0, 1, 0.2));

  sim::BatchedSimulation<double> engine(prototype);
  EXPECT_TRUE(engine.matchesShape(member));
  EXPECT_FALSE(engine.matchesShape(intruder));
}

}  // namespace
}  // namespace qclab

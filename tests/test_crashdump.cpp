/// \file test_crashdump.cpp
/// \brief Crash-diagnostics tests: obs::dumpNow() emits well-formed
/// qclab-crash-v1 JSON (validated with the benchjson parser), forked
/// children dying by SIGSEGV / std::terminate leave dumps behind while
/// the exit status still names the original signal, handler installation
/// is idempotent, and the no-op surface under QCLAB_OBS_DISABLED.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "qclab/obs/benchjson.hpp"
#include "qclab/qclab.hpp"

#ifdef QCLAB_OBS_CRASH_POSIX
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

using T = double;
namespace bj = qclab::obs::benchjson;

/// Populates counters / flight rings / stage stats worth dumping.
void simulateSomething() {
  const qclab::obs::InstrumentedBackend<T> backend;
  qclab::QCircuit<T> circuit(6);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  for (int q = 1; q < 6; ++q) {
    circuit.push_back(qclab::qgates::CX<T>(q - 1, q));
  }
  circuit.simulate("000000", backend);
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

}  // namespace

#ifdef QCLAB_OBS_CRASH_POSIX

namespace {

/// Fresh scratch directory under the test's working directory.
std::string makeScratchDir() {
  char dirTemplate[] = "qclab-crash-test-XXXXXX";
  const char* dir = mkdtemp(dirTemplate);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// Forks, runs `die` in the child (after building some obs state and
/// installing handlers with dumps routed into `dir`), and returns the
/// child's wait status.
template <typename Die>
int forkAndDie(const std::string& dir, pid_t& childPid, Die die) {
  childPid = fork();
  if (childPid == 0) {
    setenv("QCLAB_OBS_CRASH_DIR", dir.c_str(), 1);
    if (!qclab::obs::installCrashHandlers()) _exit(96);
    simulateSomething();
    die();
    _exit(97);  // the death mode failed to kill us
  }
  int status = 0;
  waitpid(childPid, &status, 0);
  return status;
}

std::string crashPathFor(const std::string& dir, pid_t pid) {
  return dir + "/qclab-crash-" + std::to_string(pid) + ".json";
}

}  // namespace

TEST(CrashDump, SignalNamesAreStable) {
  EXPECT_STREQ(qclab::obs::detail::crashSignalName(SIGSEGV), "SIGSEGV");
  EXPECT_STREQ(qclab::obs::detail::crashSignalName(SIGABRT), "SIGABRT");
  EXPECT_STREQ(qclab::obs::detail::crashSignalName(SIGFPE), "SIGFPE");
}

TEST(CrashDump, ForkedChildSegfaultLeavesAWellFormedDump) {
  const std::string dir = makeScratchDir();
  ASSERT_FALSE(dir.empty());

  pid_t childPid = 0;
  const int status =
      forkAndDie(dir, childPid, [] { std::raise(SIGSEGV); });

  // The handler re-raises through SIG_DFL, so the child still dies by
  // the original signal.
  ASSERT_TRUE(WIFSIGNALED(status)) << "status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::string path = crashPathFor(dir, childPid);
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "no dump at " << path;

  const bj::JsonValue dump = bj::parseJson(text);
  ASSERT_TRUE(dump.isObject());
  EXPECT_EQ(dump.stringOr("schema", ""), "qclab-crash-v1");
  EXPECT_EQ(dump.stringOr("signal_name", ""), "SIGSEGV");
  EXPECT_EQ(dump.stringOr("reason", ""), "fatal-signal");
  EXPECT_EQ(dump.find("pid")->number, static_cast<double>(childPid));

  const bj::JsonValue* counters = dump.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->find("gate_applications")->number, 6.0);

  const bj::JsonValue* flight = dump.find("flight");
  ASSERT_NE(flight, nullptr);
  const bj::JsonValue* rings = flight->find("rings");
  ASSERT_NE(rings, nullptr);
  ASSERT_TRUE(rings->isArray());
  ASSERT_FALSE(rings->array.empty());
  bool anyEvents = false;
  for (const auto& ring : rings->array) {
    const bj::JsonValue* events = ring.find("events");
    if (events != nullptr && !events->array.empty()) anyEvents = true;
  }
  EXPECT_TRUE(anyEvents) << "flight rings carry no events";

  EXPECT_NE(dump.find("stage_stack"), nullptr);
  EXPECT_NE(dump.find("sentinel"), nullptr);

  std::remove(path.c_str());
  rmdir(dir.c_str());
}

TEST(CrashDump, ForkedChildTerminateAlsoDumps) {
  const std::string dir = makeScratchDir();
  ASSERT_FALSE(dir.empty());

  // The lambda is noexcept so the escaping exception reaches
  // std::terminate directly (gtest's own try/catch around the test body
  // would otherwise swallow it in the forked child).
  pid_t childPid = 0;
  const int status = forkAndDie(dir, childPid, []() noexcept {
    throw std::runtime_error("uncaught on purpose");
  });

  // terminate handler dumps then aborts.
  ASSERT_TRUE(WIFSIGNALED(status)) << "status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  const std::string path = crashPathFor(dir, childPid);
  const bj::JsonValue dump = bj::parseJson(slurp(path));
  EXPECT_EQ(dump.stringOr("schema", ""), "qclab-crash-v1");
  EXPECT_EQ(dump.stringOr("reason", ""), "terminate");

  std::remove(path.c_str());
  rmdir(dir.c_str());
}

TEST(CrashDump, DumpNowWritesWellFormedJsonAndKeepsRunning) {
  qclab::obs::resetAll();
  simulateSomething();

  const std::string dir = makeScratchDir();
  ASSERT_FALSE(dir.empty());
  const std::string path = dir + "/manual-dump.json";
  ASSERT_TRUE(qclab::obs::dumpNow(path.c_str()));

  const bj::JsonValue dump = bj::parseJson(slurp(path));
  ASSERT_TRUE(dump.isObject());
  EXPECT_EQ(dump.stringOr("schema", ""), "qclab-crash-v1");
  EXPECT_EQ(dump.stringOr("reason", ""), "manual");
  EXPECT_EQ(dump.find("signal")->number, 0.0);
  EXPECT_GE(dump.find("counters")->find("gate_applications")->number, 6.0);
  EXPECT_NE(dump.find("flight"), nullptr);

  // A second dump to the same path overwrites cleanly.
  simulateSomething();
  ASSERT_TRUE(qclab::obs::dumpNow(path.c_str()));
  const bj::JsonValue again = bj::parseJson(slurp(path));
  EXPECT_GE(again.find("counters")->find("gate_applications")->number, 12.0);

  std::remove(path.c_str());
  rmdir(dir.c_str());
}

TEST(CrashDump, DumpNowFailsOnUnwritablePath) {
  EXPECT_FALSE(
      qclab::obs::dumpNow("definitely/not/a/real/dir/qclab-dump.json"));
}

// Runs last in this suite: installs the handlers in the test process
// itself (sticky for the remainder of the process).
TEST(CrashDump, InstallIsIdempotentAndRoutesDumpNow) {
  const std::string dir = makeScratchDir();
  ASSERT_FALSE(dir.empty());
  setenv("QCLAB_OBS_CRASH_DIR", dir.c_str(), 1);

  EXPECT_TRUE(qclab::obs::installCrashHandlers());
  EXPECT_TRUE(qclab::obs::crashHandlersInstalled());
  EXPECT_TRUE(qclab::obs::installCrashHandlers());  // second call: still ok

  // Pathless dumpNow lands on the installed qclab-crash-<pid>.json.
  ASSERT_TRUE(qclab::obs::dumpNow());
  const std::string path = crashPathFor(dir, getpid());
  const bj::JsonValue dump = bj::parseJson(slurp(path));
  EXPECT_EQ(dump.stringOr("schema", ""), "qclab-crash-v1");
  EXPECT_EQ(dump.find("pid")->number, static_cast<double>(getpid()));

  unsetenv("QCLAB_OBS_CRASH_DIR");
  std::remove(path.c_str());
  rmdir(dir.c_str());
}

#else  // !QCLAB_OBS_CRASH_POSIX

TEST(CrashDump, NoOpSurfaceInThisBuild) {
  EXPECT_FALSE(qclab::obs::installCrashHandlers());
  EXPECT_FALSE(qclab::obs::crashHandlersInstalled());
  EXPECT_FALSE(qclab::obs::dumpNow());
  EXPECT_FALSE(qclab::obs::dumpNow("anywhere.json"));
}

#endif  // QCLAB_OBS_CRASH_POSIX

/// \file test_counting.cpp
/// \brief Unit tests for quantum counting and the circuit depth metric.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab::algorithms {
namespace {

using namespace qclab::qgates;

TEST(MultiOracle, FlipsAllMarkedPhases) {
  const auto oracle = groverOracleMulti<double>({"00", "11"});
  const auto m = oracle.matrix();
  EXPECT_NEAR(std::abs(m(0, 0) - std::complex<double>(-1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m(1, 1) - std::complex<double>(1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m(2, 2) - std::complex<double>(1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(m(3, 3) - std::complex<double>(-1)), 0.0, 1e-12);
}

TEST(QuantumCounting, SingleMarkedStateOfFour) {
  // N = 4, M = 1: theta = asin(1/2) = pi/6; with 4 counting qubits the
  // estimate lands near M = 1.
  // theta = pi/6 is not exactly representable in 4 bits; the peak lands on
  // a neighbor of phi = 1/6, giving an estimate within ~0.6 of M = 1.
  const auto result = quantumCounting<double>(4, {"11"});
  EXPECT_NEAR(result.estimatedCount, 1.0, 0.6);
  EXPECT_GT(result.probability, 0.2);
}

TEST(QuantumCounting, TwoMarkedStatesOfFour) {
  // N = 4, M = 2: theta = pi/4 exactly -> exact phase with >= 2 counting
  // bits, so the estimate is exact.
  // The two eigenphases +-2*theta give two symmetric peaks of 0.5 each;
  // both fold onto the exact estimate M = 2.
  const auto result = quantumCounting<double>(3, {"01", "10"});
  EXPECT_NEAR(result.estimatedCount, 2.0, 1e-9);
  EXPECT_NEAR(result.probability, 0.5, 1e-9);
}

TEST(QuantumCounting, AllMarked) {
  // M = N: theta = pi/2, exact.
  const auto result =
      quantumCounting<double>(2, {"00", "01", "10", "11"});
  EXPECT_NEAR(result.estimatedCount, 4.0, 1e-9);
}

TEST(QuantumCounting, EightStateSpace) {
  // N = 8, M = 2: theta = asin(1/2) = pi/6; 4 counting qubits give a
  // coarse but usable estimate.
  const auto result = quantumCounting<double>(4, {"000", "111"});
  EXPECT_NEAR(result.estimatedCount, 2.0, 1.0);
}

TEST(QuantumCounting, Validation) {
  EXPECT_THROW(quantumCounting<double>(0, {"11"}), InvalidArgumentError);
  EXPECT_THROW(quantumCounting<double>(2, {}), InvalidArgumentError);
  EXPECT_THROW(groverOracleMulti<double>({"01", "001"}),
               InvalidArgumentError);
}

TEST(Depth, EmptyAndSingleGate) {
  QCircuit<double> circuit(3);
  EXPECT_EQ(circuit.depth(), 0);
  circuit.push_back(Hadamard<double>(1));
  EXPECT_EQ(circuit.depth(), 1);
}

TEST(Depth, ParallelGatesShareLayer) {
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Hadamard<double>(1));
  circuit.push_back(Hadamard<double>(2));
  EXPECT_EQ(circuit.depth(), 1);
  circuit.push_back(CX<double>(0, 1));
  EXPECT_EQ(circuit.depth(), 2);
  circuit.push_back(Hadamard<double>(2));  // fits alongside the CX
  EXPECT_EQ(circuit.depth(), 2);
}

TEST(Depth, ControlSpanBlocksIntermediateQubits) {
  QCircuit<double> circuit(3);
  circuit.push_back(CZ<double>(0, 2));
  circuit.push_back(Hadamard<double>(1));  // inside the CZ span
  EXPECT_EQ(circuit.depth(), 2);
}

TEST(Depth, NestedCircuitsCountElementwise) {
  QCircuit<double> sub(2, 1);
  sub.push_back(Hadamard<double>(0));
  sub.push_back(CX<double>(0, 1));
  QCircuit<double> parent(3);
  parent.push_back(Hadamard<double>(0));
  parent.push_back(QCircuit<double>(sub));
  // H(0) in layer 0; sub's H(1) also layer 0; CX(1,2) layer 1.
  EXPECT_EQ(parent.depth(), 2);
}

TEST(Depth, GhzIsLinear) {
  for (int n = 2; n <= 8; ++n) {
    EXPECT_EQ(ghz<double>(n).depth(), n);
  }
}

TEST(Depth, MeasurementsOccupyLayers) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  EXPECT_EQ(circuit.depth(), 2);
}

}  // namespace
}  // namespace qclab::algorithms

/// \file test_density.cpp
/// \brief Unit tests for the density-matrix utilities behind the tomography
/// example (paper §5.2).

#include <gtest/gtest.h>

#include "qclab/density.hpp"
#include "test_helpers.hpp"

namespace qclab::density {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

std::vector<C> paperV() {
  const double h = 1.0 / std::sqrt(2.0);
  return {C(h, 0.0), C(0.0, h)};
}

TEST(Density, PureStateDensityMatrix) {
  const auto rho = densityMatrix(paperV());
  // Paper §5.2: rho_v = [[0.5, -0.5i], [0.5i, 0.5]].
  EXPECT_NEAR(std::abs(rho(0, 0) - C(0.5)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(rho(0, 1) - C(0.0, -0.5)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(rho(1, 0) - C(0.0, 0.5)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(rho(1, 1) - C(0.5)), 0.0, 1e-14);
  EXPECT_TRUE(isDensityMatrix(rho, 1e-12));
}

TEST(Density, IsDensityMatrixChecks) {
  EXPECT_FALSE(isDensityMatrix(M::identity(2), 1e-12));  // trace 2
  auto mixed = M::identity(2);
  mixed *= C(0.5);
  EXPECT_TRUE(isDensityMatrix(mixed, 1e-12));
  EXPECT_FALSE(isDensityMatrix(M{{0.5, 0.5}, {0.0, 0.5}}, 1e-12));
}

TEST(Density, PurityPureVsMixed) {
  EXPECT_NEAR(purity(densityMatrix(paperV())), 1.0, 1e-13);
  auto mixed = M::identity(2);
  mixed *= C(0.5);
  EXPECT_NEAR(purity(mixed), 0.5, 1e-14);
}

TEST(Density, TraceDistanceExtremes) {
  const auto rho0 = densityMatrix(basisState<double>("0"));
  const auto rho1 = densityMatrix(basisState<double>("1"));
  EXPECT_NEAR(traceDistance(rho0, rho0), 0.0, 1e-13);
  EXPECT_NEAR(traceDistance(rho0, rho1), 1.0, 1e-13);
}

TEST(Density, TraceDistanceOfPureStatesFormula) {
  // For pure states: D = sqrt(1 - |<a|b>|^2).
  random::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const auto a = qclab::test::randomState<double>(1, rng);
    const auto b = qclab::test::randomState<double>(1, rng);
    const double overlap = std::abs(dense::inner(a, b));
    const double expected = std::sqrt(std::max(0.0, 1.0 - overlap * overlap));
    EXPECT_NEAR(traceDistance(densityMatrix(a), densityMatrix(b)), expected,
                1e-10);
  }
}

TEST(Density, FidelityPureStates) {
  // F(|a>, |b>) = |<a|b>|^2.
  random::Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const auto a = qclab::test::randomState<double>(1, rng);
    const auto b = qclab::test::randomState<double>(1, rng);
    const double overlap = std::abs(dense::inner(a, b));
    EXPECT_NEAR(fidelity(densityMatrix(a), densityMatrix(b)),
                overlap * overlap, 1e-7);  // Jacobi eigensolver accuracy
    EXPECT_NEAR(fidelity(a, densityMatrix(b)), overlap * overlap, 1e-12);
  }
}

TEST(Density, FidelityWithSelfIsOne) {
  const auto rho = densityMatrix(paperV());
  EXPECT_NEAR(fidelity(rho, rho), 1.0, 1e-10);
  EXPECT_NEAR(fidelity(paperV(), rho), 1.0, 1e-13);
}

TEST(Density, SqrtPsd) {
  const auto rho = densityMatrix(paperV());
  const auto root = sqrtPsd(rho);
  qclab::test::expectMatrixNear(root * root, rho, 1e-11);
  EXPECT_THROW(sqrtPsd(M{{-1.0, 0.0}, {0.0, 1.0}}),
               qclab::InvalidArgumentError);
}

TEST(Density, PartialTraceOfProductState) {
  random::Rng rng(3);
  const auto a = qclab::test::randomState<double>(1, rng);
  const auto b = qclab::test::randomState<double>(1, rng);
  const auto rho = densityMatrix(dense::kron(a, b));
  // Tracing out qubit 1 leaves |a><a|.
  qclab::test::expectMatrixNear(partialTrace(rho, 2, {1}), densityMatrix(a),
                                1e-12);
  // Tracing out qubit 0 leaves |b><b|.
  qclab::test::expectMatrixNear(partialTrace(rho, 2, {0}), densityMatrix(b),
                                1e-12);
}

TEST(Density, PartialTraceOfBellIsMaximallyMixed) {
  const double h = 1.0 / std::sqrt(2.0);
  const std::vector<C> bell = {C(h), C(0), C(0), C(h)};
  const auto rho = densityMatrix(bell);
  auto half = M::identity(2);
  half *= C(0.5);
  qclab::test::expectMatrixNear(partialTrace(rho, 2, {0}), half, 1e-13);
  qclab::test::expectMatrixNear(partialTrace(rho, 2, {1}), half, 1e-13);
}

TEST(Density, PartialTracePreservesTrace) {
  random::Rng rng(4);
  const auto state = qclab::test::randomState<double>(3, rng);
  const auto rho = densityMatrix(state);
  for (const std::vector<int>& traced :
       {std::vector<int>{0}, {1}, {2}, {0, 2}, {0, 1, 2}}) {
    const auto reduced = partialTrace(rho, 3, traced);
    EXPECT_NEAR(std::abs(reduced.trace() - C(1)), 0.0, 1e-12);
  }
}

TEST(Density, PartialTraceValidation) {
  const auto rho = densityMatrix(basisState<double>("00"));
  EXPECT_THROW(partialTrace(rho, 2, {2}), qclab::QubitRangeError);
  EXPECT_THROW(partialTrace(rho, 2, {0, 0}), qclab::InvalidArgumentError);
  EXPECT_THROW(partialTrace(M::identity(3), 2, {0}),
               qclab::InvalidArgumentError);
}

TEST(Density, PauliCoefficientsRoundTrip) {
  const auto rho = densityMatrix(paperV());
  const auto s = pauliCoefficients(rho);
  EXPECT_NEAR(s[0], 1.0, 1e-13);  // trace
  EXPECT_NEAR(s[1], 0.0, 1e-13);  // <X>
  EXPECT_NEAR(s[2], 1.0, 1e-13);  // <Y> (v is the +1 eigenstate of Y)
  EXPECT_NEAR(s[3], 0.0, 1e-13);  // <Z>
  qclab::test::expectMatrixNear(fromPauliCoefficients(s), rho, 1e-13);
}

TEST(Density, PauliCoefficientsOfBasisStates) {
  const auto s0 = pauliCoefficients(densityMatrix(basisState<double>("0")));
  EXPECT_NEAR(s0[3], 1.0, 1e-14);
  const auto s1 = pauliCoefficients(densityMatrix(basisState<double>("1")));
  EXPECT_NEAR(s1[3], -1.0, 1e-14);
}

class PartialTraceSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartialTraceSweep, ReducedOfCircuitStateIsValidDensityMatrix) {
  const int nbQubits = 4;
  const int seed = GetParam();
  const auto circuit = qclab::test::randomCircuit<double>(nbQubits, 20, seed);
  const auto state =
      circuit.simulate(std::string(static_cast<std::size_t>(nbQubits), '0'))
          .state(0);
  const auto rho = densityMatrix(state);
  const auto reduced = partialTrace(rho, nbQubits, {1, 3});
  EXPECT_TRUE(isDensityMatrix(reduced, 1e-10));
  // Purity of a reduced state lies in [1/d, 1].
  const double p = purity(reduced);
  EXPECT_GE(p, 0.25 - 1e-10);
  EXPECT_LE(p, 1.0 + 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialTraceSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace qclab::density

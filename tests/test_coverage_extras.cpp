/// \file test_coverage_extras.cpp
/// \brief Gap-filling tests for paths not covered elsewhere: measurement
/// noise models, stabilizer iSWAP†, unmeasured phase estimation, drawing
/// edge cases, and nested-circuit noise simulation.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using C = std::complex<double>;
using namespace qclab::qgates;

TEST(NoiseModel, MeasurementNoiseFlipsOutcomes) {
  // Perfect state |0>, but the readout channel flips with probability 0.1:
  // the post-measurement distribution shows the readout error.
  noise::NoiseModel<double> model;
  model.measurementNoise = noise::KrausChannel<double>::bitFlip(0.1);
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0));
  const auto rho = noise::simulateDensity(circuit, "0", model);
  const auto distribution = rho.probabilities({0});
  EXPECT_NEAR(distribution[0], 0.9, 1e-12);
  EXPECT_NEAR(distribution[1], 0.1, 1e-12);
}

TEST(NoiseModel, GateNoiseAppliesPerTouchedQubit) {
  // A CX under bit-flip gate noise perturbs both qubits.
  noise::NoiseModel<double> model;
  model.gateNoise = noise::KrausChannel<double>::bitFlip(0.25);
  QCircuit<double> circuit(2);
  circuit.push_back(CX<double>(0, 1));
  const auto rho = noise::simulateDensity(circuit, "00", model);
  // Marginal flip probability 0.25 per qubit.
  EXPECT_NEAR(rho.probability0(0), 0.75, 1e-12);
  EXPECT_NEAR(rho.probability0(1), 0.75, 1e-12);
}

TEST(NoiseModel, NestedCircuitsCarryOffsets) {
  QCircuit<double> sub(1, 1);  // acts on qubit 1 of the parent
  sub.push_back(PauliX<double>(0));
  QCircuit<double> parent(2);
  parent.push_back(QCircuit<double>(sub));
  const auto rho = noise::simulateDensity(parent, "00");
  EXPECT_NEAR(rho.probability0(1), 0.0, 1e-12);
  EXPECT_NEAR(rho.probability0(0), 1.0, 1e-12);
}

TEST(Stabilizer, ISwapDaggerInvertsISwap) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(iSWAP<double>(0, 1));
  circuit.push_back(iSWAPdg<double>(0, 1));
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  random::Rng rng(1);
  for (int shot = 0; shot < 20; ++shot) {
    stabilizer::Tableau tableau(2);
    EXPECT_EQ(stabilizer::simulateShot(circuit, tableau, rng), "00");
  }
}

TEST(Stabilizer, RejectsCustomBasisMeasurement) {
  const double h = 1.0 / std::sqrt(2.0);
  dense::Matrix<double> basis{{h, h}, {h, -h}};
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0, basis));
  random::Rng rng(2);
  stabilizer::Tableau tableau(1);
  EXPECT_THROW(stabilizer::simulateShot(circuit, tableau, rng),
               InvalidArgumentError);
}

TEST(PhaseEstimation, UnmeasuredVariantLeavesRegisterCoherent) {
  const auto tGate = TGate<double>(0).matrix();
  auto circuit = algorithms::phaseEstimation<double>(3, tGate,
                                                     /*measure=*/false);
  auto initial = dense::kron(basisState<double>("000"),
                             basisState<double>("1"));
  const auto simulation = circuit.simulate(initial);
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.nbMeasurements(), 0u);
  // The counting register holds |001> exactly; with the target |1>, the
  // full state is the basis state |0011>.
  qclab::test::expectStateNear(simulation.state(0),
                               basisState<double>("0011"), 1e-10);
}

TEST(Draw, SingleQubitEmptyCircuit) {
  QCircuit<double> circuit(1);
  const auto drawing = circuit.draw();
  EXPECT_NE(drawing.find("q0:"), std::string::npos);
  EXPECT_EQ(std::count(drawing.begin(), drawing.end(), '\n'), 3);
}

TEST(Draw, OffsetCircuitRendersLowerRows) {
  QCircuit<double> sub(1, 2);
  sub.push_back(Hadamard<double>(0));
  // Drawing the offset circuit standalone shows wires q0..q2.
  const auto drawing = sub.draw();
  EXPECT_NE(drawing.find("q2:"), std::string::npos);
  EXPECT_NE(drawing.find("H"), std::string::npos);
}

TEST(Draw, WideAngleLabelsWidenColumns) {
  QCircuit<double> circuit(2);
  circuit.push_back(RotationX<double>(0, -2.25));
  circuit.push_back(Hadamard<double>(1));
  const auto drawing = circuit.draw();
  EXPECT_NE(drawing.find("RX(-2.25)"), std::string::npos);
}

TEST(QCircuitExtras, DepthAndCountsOfPaperCircuits) {
  // Layers: [CX01 | M1] is not possible (q1 shared) -> CX01; [H0, M1];
  // [M0, CX12]; [CZ02] -> depth 4.
  const auto qtc = algorithms::teleportationCircuit<double>();
  EXPECT_EQ(qtc.depth(), 4);
  const auto counts = qtc.gateCounts();
  EXPECT_EQ(counts.at("measure"), 2u);
  EXPECT_EQ(counts.at("cX"), 2u);
  EXPECT_EQ(counts.at("cZ"), 1u);
  EXPECT_EQ(counts.at("H"), 1u);
}

TEST(QCircuitExtras, InverseOfBlockKeepsLabel) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.asBlock("G");
  const auto inverse = circuit.inverted();
  EXPECT_TRUE(inverse.isBlock());
  EXPECT_EQ(inverse.label(), "G†");
}

TEST(Measurement, CustomBasisSimulationProbabilities) {
  // Custom basis whose first vector is v itself: measuring v gives 0 with
  // certainty.
  const double h = 1.0 / std::sqrt(2.0);
  const std::vector<C> v = {C(h, 0.0), C(0.0, h)};
  dense::Matrix<double> basis(2, 2);
  basis(0, 0) = v[0];
  basis(1, 0) = v[1];
  basis(0, 1) = -std::conj(v[1]);
  basis(1, 1) = std::conj(v[0]);
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0, basis));
  const auto simulation = circuit.simulate(v);
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0), "0");
  EXPECT_NEAR(simulation.probability(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace qclab

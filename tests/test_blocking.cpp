/// \file test_blocking.cpp
/// \brief Cache-blocked executor tests: chunk sizing, schedule grouping,
/// bit-identity of blocked vs plain fusion sweeps, random-circuit fuzz
/// against the unfused simulator (float and double), mid-circuit
/// measurement flush, and kBlocked obs attribution.

#include <gtest/gtest.h>

#include <complex>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"
#include "test_helpers.hpp"

using qclab::sim::BlockingOptions;
using qclab::sim::KernelPath;
using qclab::sim::SimdLevel;

namespace {

/// buildBlockSchedule only reads `.qubits`; a bare stub keeps the
/// schedule tests independent of the fusion scheduler.
struct StubBlock {
  std::vector<int> qubits;
};

/// A fusion-enabled SimulateOptions with an explicit chunk size (small
/// enough to trigger blocking on test-sized registers).
qclab::SimulateOptions blockedOptions(int blockQubits) {
  qclab::SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.blockQubits = blockQubits;
  return options;
}

qclab::SimulateOptions unblockedOptions() {
  qclab::SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.blocking = false;
  return options;
}

}  // namespace

// ---- chunk sizing -----------------------------------------------------

TEST(Blocking, AutoBlockQubitsHalvesTheL2) {
  // 2^b amplitudes must fill at most half the assumed L2.
  EXPECT_EQ(qclab::sim::autoBlockQubits<double>(std::size_t{1} << 20), 15);
  EXPECT_EQ(qclab::sim::autoBlockQubits<float>(std::size_t{1} << 20), 16);
  EXPECT_EQ(qclab::sim::autoBlockQubits<double>(std::size_t{1} << 19), 14);
}

TEST(Blocking, ScheduleSizesChunksByTheActualScalarType) {
  // Regression: buildBlockSchedule used to size chunks as if every state
  // were double, wasting half the L2 window for float states.  A float
  // amplitude is 8 bytes, so the same L2 budget fits one more qubit.
  const std::vector<StubBlock> blocks = {{{5}}, {{6, 7}}, {{7}}, {{6}}};
  BlockingOptions options;
  options.l2Bytes = std::size_t{1} << 8;  // double: b = 3, float: b = 4
  const auto viaDouble =
      qclab::sim::buildBlockSchedule<double>(blocks, 8, options);
  const auto viaFloat =
      qclab::sim::buildBlockSchedule<float>(blocks, 8, options);
  EXPECT_EQ(viaDouble.blockQubits, 3);
  EXPECT_EQ(viaFloat.blockQubits, 4);
  // The bare (untyped) call keeps its historical double sizing.
  EXPECT_EQ(qclab::sim::buildBlockSchedule(blocks, 8, options).blockQubits, 3);
}

// ---- environment overrides (QCLAB_L2_BYTES / QCLAB_BLOCK_QUBITS) ------

TEST(Blocking, EnvironmentOverridesBlockingOptions) {
  BlockingOptions defaults;

  ::setenv("QCLAB_L2_BYTES", "524288", 1);
  EXPECT_EQ(qclab::sim::resolveBlockingOptions(defaults).l2Bytes,
            std::size_t{1} << 19);
  ::setenv("QCLAB_BLOCK_QUBITS", "7", 1);
  EXPECT_EQ(qclab::sim::resolveBlockingOptions(defaults).blockQubits, 7);

  // Malformed or out-of-range values are ignored, not fatal.
  ::setenv("QCLAB_L2_BYTES", "garbage", 1);
  ::setenv("QCLAB_BLOCK_QUBITS", "-3", 1);
  const auto resolved = qclab::sim::resolveBlockingOptions(defaults);
  EXPECT_EQ(resolved.l2Bytes, defaults.l2Bytes);
  EXPECT_EQ(resolved.blockQubits, defaults.blockQubits);

  ::unsetenv("QCLAB_L2_BYTES");
  ::unsetenv("QCLAB_BLOCK_QUBITS");
  const auto untouched = qclab::sim::resolveBlockingOptions(defaults);
  EXPECT_EQ(untouched.l2Bytes, defaults.l2Bytes);
  EXPECT_EQ(untouched.blockQubits, defaults.blockQubits);
}

TEST(Blocking, EnvironmentBlockQubitsReachesTheSchedule) {
  const std::vector<StubBlock> blocks = {{{5}}, {{6, 7}}, {{7}}, {{6}}};
  BlockingOptions options;
  options.blockQubits = 4;
  ::setenv("QCLAB_BLOCK_QUBITS", "3", 1);
  const auto schedule = qclab::sim::buildBlockSchedule(blocks, 8, options);
  ::unsetenv("QCLAB_BLOCK_QUBITS");
  EXPECT_EQ(schedule.blockQubits, 3);
}

// ---- schedule grouping ------------------------------------------------

TEST(Blocking, ScheduleGroupsConsecutiveLowPositionRuns) {
  // n = 8, b = 4: blockable gates live on qubits >= 4 (bit positions < 4).
  const std::vector<StubBlock> blocks = {
      {{5}}, {{6, 7}},  // blockable run of 2
      {{0}},            // full-sweep block
      {{4}}, {{7}},     // blockable run of 2
  };
  BlockingOptions options;
  options.blockQubits = 4;
  const auto schedule = qclab::sim::buildBlockSchedule(blocks, 8, options);

  EXPECT_EQ(schedule.blockQubits, 4);
  ASSERT_EQ(schedule.items.size(), 3u);
  EXPECT_TRUE(schedule.items[0].blocked);
  EXPECT_EQ(schedule.items[0].first, 0u);
  EXPECT_EQ(schedule.items[0].count, 2u);
  EXPECT_FALSE(schedule.items[1].blocked);
  EXPECT_EQ(schedule.items[1].count, 1u);
  EXPECT_TRUE(schedule.items[2].blocked);
  EXPECT_EQ(schedule.items[2].first, 3u);
  EXPECT_EQ(schedule.items[2].count, 2u);
  EXPECT_EQ(schedule.blockedRuns(), 2u);
}

TEST(Blocking, ShortRunsAndEscapingBlocksStayPlain) {
  BlockingOptions options;
  options.blockQubits = 4;

  // A lone blockable block gains nothing: the schedule stays empty.
  const std::vector<StubBlock> lone = {{{7}}, {{0}}, {{1}}};
  EXPECT_TRUE(qclab::sim::buildBlockSchedule(lone, 8, options).items.empty());

  // A block straddling the window boundary (qubit 3 has position 4)
  // breaks the run.
  const std::vector<StubBlock> straddle = {{{5}}, {{3, 7}}, {{6}}};
  EXPECT_TRUE(
      qclab::sim::buildBlockSchedule(straddle, 8, options).items.empty());

  // Disabled, or whole state inside one chunk: no schedule.
  const std::vector<StubBlock> run = {{{6}}, {{7}}};
  options.enabled = false;
  EXPECT_TRUE(qclab::sim::buildBlockSchedule(run, 8, options).items.empty());
  options.enabled = true;
  options.blockQubits = 8;
  EXPECT_TRUE(qclab::sim::buildBlockSchedule(run, 8, options).items.empty());
}

TEST(Blocking, FusionPlanCarriesTheSchedule) {
  using T = double;
  // All gates on qubits 4..7 of an 8-qubit register fuse into low-window
  // blocks; maxQubits=2 forces several blocks so a run can form.
  qclab::QCircuit<T> circuit(8);
  circuit.push_back(qclab::qgates::Hadamard<T>(4));
  circuit.push_back(qclab::qgates::CX<T>(4, 5));
  circuit.push_back(qclab::qgates::Hadamard<T>(6));
  circuit.push_back(qclab::qgates::CX<T>(6, 7));
  circuit.push_back(qclab::qgates::RotationZZ<T>(5, 6, 0.3));

  std::vector<qclab::sim::GateRef<T>> refs;
  for (auto it = circuit.begin(); it != circuit.end(); ++it) {
    refs.push_back({static_cast<const qclab::qgates::QGate<T>*>(it->get()), 0});
  }
  qclab::sim::FusionOptions options;
  options.maxQubits = 2;
  options.blockQubits = 4;
  const auto plan = qclab::sim::fuseGates(refs, 8, options);
  ASSERT_GE(plan.blocks.size(), 2u);
  EXPECT_GE(plan.schedule.blockedRuns(), 1u);

  options.blocking = false;
  const auto plain = qclab::sim::fuseGates(refs, 8, options);
  EXPECT_TRUE(plain.schedule.items.empty());
}

// ---- correctness ------------------------------------------------------

template <typename T>
class BlockingDifferential : public ::testing::Test {};
using Scalars = ::testing::Types<float, double>;
TYPED_TEST_SUITE(BlockingDifferential, Scalars);

TYPED_TEST(BlockingDifferential, BlockedSweepsAreBitIdenticalToPlain) {
  using T = TypeParam;
  // Same kernels, same order, same chunk-closed index transforms: the
  // blocked executor must reproduce the plain fusion sweeps exactly.
  for (int n : {5, 8, 11}) {
    auto circuit = qclab::test::randomCircuit<T>(
        n, 40, 500u + static_cast<unsigned>(n));
    const auto plain =
        circuit.simulate(std::string(n, '0'), unblockedOptions());
    const auto blocked =
        circuit.simulate(std::string(n, '0'), blockedOptions(3));
    ASSERT_EQ(plain.nbBranches(), blocked.nbBranches());
    const auto& a = plain.state(0);
    const auto& b = blocked.state(0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "amplitude " << i << " (n=" << n << ")";
    }
  }
}

TYPED_TEST(BlockingDifferential, EveryBlockQubitsIsBitIdenticalToPlain) {
  using T = TypeParam;
  // Sweep the whole chunk-size range: every blockQubits in 1..n must
  // reproduce the plain (unblocked) fusion sweep bit for bit — same
  // kernels, same order, only the loop nest differs.
  for (int n : {4, 7, 10}) {
    const auto circuit = qclab::test::randomCircuit<T>(
        n, 45, 1300u + static_cast<unsigned>(n));
    const auto plain =
        circuit.simulate(std::string(n, '0'), unblockedOptions());
    const auto& a = plain.state(0);
    for (int blockQubits = 1; blockQubits <= n; ++blockQubits) {
      const auto blocked =
          circuit.simulate(std::string(n, '0'), blockedOptions(blockQubits));
      ASSERT_EQ(plain.nbBranches(), blocked.nbBranches());
      const auto& b = blocked.state(0);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(std::memcmp(a.data(), b.data(),
                            a.size() * sizeof(std::complex<T>)),
                0)
          << "n=" << n << " blockQubits=" << blockQubits;
    }
  }
}

TYPED_TEST(BlockingDifferential, RandomCircuitsMatchUnfusedSimulation) {
  using T = TypeParam;
  for (int n = 2; n <= 12; n += 2) {
    for (int blockQubits : {1, 2, 4}) {
      if (blockQubits >= n) continue;
      const auto circuit = qclab::test::randomCircuit<T>(
          n, 35, 900u + static_cast<unsigned>(n + 31 * blockQubits));
      const auto reference = circuit.simulate(std::string(n, '0'));
      const auto blocked =
          circuit.simulate(std::string(n, '0'), blockedOptions(blockQubits));
      ASSERT_EQ(reference.nbBranches(), blocked.nbBranches());
      // Fusion reorders the floating-point products; tolerance compare.
      qclab::test::expectStateNear(reference.state(0), blocked.state(0),
                                   T(8) * qclab::test::tol<T>());
    }
  }
}

TYPED_TEST(BlockingDifferential, MidCircuitMeasurementFlushesTheRun) {
  using T = TypeParam;
  // Gates on the blockable window, a measurement branch point, then more
  // gates: the measurement must flush (and close) the open blocked run.
  qclab::QCircuit<T> circuit(6);
  circuit.push_back(qclab::qgates::Hadamard<T>(4));
  circuit.push_back(qclab::qgates::CX<T>(4, 5));
  circuit.push_back(qclab::qgates::RotationY<T>(5, 0.7));
  circuit.push_back(qclab::Measurement<T>(4));
  circuit.push_back(qclab::qgates::Hadamard<T>(5));
  circuit.push_back(qclab::qgates::CX<T>(3, 4));
  circuit.push_back(qclab::qgates::RotationZ<T>(5, 0.4));

  const auto reference = circuit.simulate("000000");
  const auto blocked = circuit.simulate("000000", blockedOptions(2));
  ASSERT_EQ(reference.nbBranches(), blocked.nbBranches());
  for (std::size_t b = 0; b < reference.nbBranches(); ++b) {
    EXPECT_EQ(reference.result(b), blocked.result(b));
    EXPECT_NEAR(reference.probability(b), blocked.probability(b),
                qclab::test::tol<T>());
    qclab::test::expectStateNear(reference.state(b), blocked.state(b),
                                 T(8) * qclab::test::tol<T>());
  }
}

TEST(Blocking, ControlledGatesInsideTheWindowStayCorrect) {
  using T = double;
  // Controlled + multi-control gates restricted to the window exercise
  // the compiled kDenseK chunk path (controls make 3-qubit blocks).
  qclab::QCircuit<T> circuit(7);
  circuit.push_back(qclab::qgates::Hadamard<T>(4));
  circuit.push_back(qclab::qgates::Hadamard<T>(5));
  circuit.push_back(qclab::qgates::MCX<T>({4, 5}, 6, {1, 1}));
  circuit.push_back(qclab::qgates::CPhase<T>(5, 6, 0.9));
  circuit.push_back(qclab::qgates::MCX<T>({4, 6}, 5, {0, 1}));

  qclab::SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.maxQubits = 3;
  options.fusionOptions.blockQubits = 3;
  const auto reference = circuit.simulate("0000000");
  const auto blocked = circuit.simulate("0000000", options);
  qclab::test::expectStateNear(reference.state(0), blocked.state(0),
                               8 * qclab::test::tol<double>());
}

// ---- obs attribution --------------------------------------------------

TEST(Blocking, BlockedSweepsCountUnderTheBlockedPath) {
  if (!qclab::obs::kEnabled) GTEST_SKIP() << "obs disabled in this build";
  using T = double;
  auto& metrics = qclab::obs::metrics();
  metrics.reset();
  qclab::obs::latencyHistograms().reset();

  qclab::QCircuit<T> circuit(8);
  circuit.push_back(qclab::qgates::Hadamard<T>(5));
  circuit.push_back(qclab::qgates::CX<T>(5, 6));
  circuit.push_back(qclab::qgates::Hadamard<T>(7));
  circuit.push_back(qclab::qgates::CX<T>(6, 7));

  qclab::SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.maxQubits = 2;
  options.fusionOptions.blockQubits = 3;
  circuit.simulate("00000000", options);

  EXPECT_GE(metrics.gateApplications(KernelPath::kBlocked), 1u);
  // One streamed sweep's worth of bytes per blocked run (the roofline
  // numerator for the effective-GB/s attribution).
  const std::uint64_t stateBytes =
      (std::uint64_t{1} << 8) * sizeof(std::complex<T>);
  EXPECT_EQ(metrics.bytesTouched(KernelPath::kBlocked),
            metrics.gateApplications(KernelPath::kBlocked) * 2 * stateBytes);
  EXPECT_GE(
      qclab::obs::latencyHistograms().histogram(KernelPath::kBlocked).count(),
      1u);
}

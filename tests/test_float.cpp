/// \file test_float.cpp
/// \brief The library is templated over the real scalar type like QCLAB++;
/// exercise the whole stack with T = float.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using C = std::complex<float>;
using namespace qclab::qgates;

TEST(Float, BellCircuitSimulation) {
  QCircuit<float> circuit(2);
  circuit.push_back(std::make_unique<Hadamard<float>>(0));
  circuit.push_back(std::make_unique<CNOT<float>>(0, 1));
  circuit.push_back(std::make_unique<Measurement<float>>(0));
  circuit.push_back(std::make_unique<Measurement<float>>(1));
  const auto simulation = circuit.simulate("00");
  ASSERT_EQ(simulation.results(), (std::vector<std::string>{"00", "11"}));
  EXPECT_NEAR(simulation.probability(0), 0.5, 1e-6);
  EXPECT_NEAR(simulation.probability(1), 0.5, 1e-6);
}

TEST(Float, GateMatricesUnitary) {
  EXPECT_TRUE(Hadamard<float>(0).matrix().isUnitary(1e-6f));
  EXPECT_TRUE(RotationX<float>(0, 0.7f).matrix().isUnitary(1e-6f));
  EXPECT_TRUE(Toffoli<float>(0, 1, 2).matrix().isUnitary(1e-5f));
  EXPECT_TRUE(U3<float>(0, 0.3f, -0.2f, 1.1f).matrix().isUnitary(1e-6f));
}

TEST(Float, BackendsAgree) {
  const auto circuit = qclab::test::randomCircuit<float>(4, 20, 3);
  random::Rng rng(4);
  const auto initial = qclab::test::randomState<float>(4, rng);
  const sim::KernelBackend<float> kernel;
  const sim::SparseKronBackend<float> sparse;
  const auto a = circuit.simulate(initial, kernel).state(0);
  const auto b = circuit.simulate(initial, sparse).state(0);
  qclab::test::expectStateNear(a, b, 1e-4f);
}

TEST(Float, QRotationFusion) {
  QRotation<float> rotation(0.5f);
  const auto composed = rotation * QRotation<float>(0.25f);
  EXPECT_NEAR(composed.theta(), 0.75f, 1e-6f);
}

TEST(Float, GroverFindsMarkedState) {
  const auto circuit = algorithms::grover<float>("11", 1);
  const auto simulation = circuit.simulate("00");
  ASSERT_EQ(simulation.results(), std::vector<std::string>{"11"});
  EXPECT_NEAR(simulation.probability(0), 1.0, 1e-5);
}

TEST(Float, TeleportationPreservesState) {
  const float h = 1.0f / std::sqrt(2.0f);
  const std::vector<C> v = {C(h, 0.0f), C(0.0f, h)};
  const auto qtc = algorithms::teleportationCircuit<float>();
  const auto simulation = qtc.simulate(algorithms::teleportationInput(v));
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    const auto reduced = reducedStatevector<float>(
        simulation.state(i), {0, 1}, simulation.result(i), 1e-4f);
    qclab::test::expectStateNear(reduced, v, 1e-5f);
  }
}

TEST(Float, QasmRoundTrip) {
  QCircuit<float> circuit(2);
  circuit.push_back(Hadamard<float>(0));
  circuit.push_back(RotationZ<float>(1, 0.75f));
  circuit.push_back(CX<float>(0, 1));
  const auto reparsed = io::parseQasm<float>(circuit.toQASM());
  qclab::test::expectMatrixNear(reparsed.matrix(), circuit.matrix(), 1e-5f);
}

}  // namespace
}  // namespace qclab

/// \file test_reduced_statevector.cpp
/// \brief Unit tests for reducedStatevector (paper §5.1) and basisState.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using C = std::complex<double>;

TEST(BasisState, SingleQubit) {
  const auto zero = basisState<double>("0");
  ASSERT_EQ(zero.size(), 2u);
  EXPECT_EQ(zero[0], C(1));
  EXPECT_EQ(zero[1], C(0));
  const auto one = basisState<double>("1");
  EXPECT_EQ(one[1], C(1));
}

TEST(BasisState, MsbFirstOrdering) {
  const auto state = basisState<double>("10");
  ASSERT_EQ(state.size(), 4u);
  EXPECT_EQ(state[2], C(1));  // |10> -> index 2
}

TEST(BasisState, Validation) {
  EXPECT_THROW(basisState<double>(""), InvalidArgumentError);
  EXPECT_THROW(basisState<double>("02"), InvalidArgumentError);
}

TEST(ReducedStatevector, ExtractsFactorOfProductState) {
  // |1> (x) v: knowing qubit 0 is '1' recovers v on qubit 1.
  random::Rng rng(1);
  const auto v = qclab::test::randomState<double>(1, rng);
  const auto full = dense::kron(basisState<double>("1"), v);
  const auto reduced = reducedStatevector<double>(full, {0}, "1");
  qclab::test::expectStateNear(reduced, v);
}

TEST(ReducedStatevector, MiddleQubitKnown) {
  // a (x) |0> (x) b on 3 qubits; qubit 1 known.
  random::Rng rng(2);
  const auto a = qclab::test::randomState<double>(1, rng);
  const auto b = qclab::test::randomState<double>(1, rng);
  const auto full = dense::kron(a, dense::kron(basisState<double>("0"), b));
  const auto reduced = reducedStatevector<double>(full, {1}, "0");
  qclab::test::expectStateNear(reduced, dense::kron(a, b));
}

TEST(ReducedStatevector, MultipleKnownQubitsAnyOrder) {
  random::Rng rng(3);
  const auto v = qclab::test::randomState<double>(1, rng);
  // v on qubit 1, qubits 0 and 2 in |1> and |0>.
  const auto full = dense::kron(
      basisState<double>("1"), dense::kron(v, basisState<double>("0")));
  // Known qubits given in descending order with matching values.
  const auto reduced = reducedStatevector<double>(full, {2, 0}, "01");
  qclab::test::expectStateNear(reduced, v);
}

TEST(ReducedStatevector, NoKnownQubitsReturnsInput) {
  random::Rng rng(4);
  const auto v = qclab::test::randomState<double>(2, rng);
  const auto reduced = reducedStatevector<double>(v, {}, "");
  qclab::test::expectStateNear(reduced, v);
}

TEST(ReducedStatevector, AllKnownReturnsScalar) {
  const auto full = basisState<double>("101");
  const auto reduced = reducedStatevector<double>(full, {0, 1, 2}, "101");
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_NEAR(std::abs(reduced[0]), 1.0, 1e-14);
}

TEST(ReducedStatevector, ThrowsOnEntangledState) {
  // Bell state: neither qubit has a definite value.
  const double h = 1.0 / std::sqrt(2.0);
  const std::vector<C> bell = {C(h), C(0), C(0), C(h)};
  EXPECT_THROW(reducedStatevector<double>(bell, {0}, "0"),
               InvalidArgumentError);
}

TEST(ReducedStatevector, ThrowsOnWrongKnownValue) {
  const auto full = basisState<double>("10");
  EXPECT_THROW(reducedStatevector<double>(full, {0}, "0"),
               InvalidArgumentError);
}

TEST(ReducedStatevector, Validation) {
  const auto full = basisState<double>("00");
  EXPECT_THROW(reducedStatevector<double>(full, {0}, "01"),
               InvalidArgumentError);
  EXPECT_THROW(reducedStatevector<double>(full, {0, 0}, "00"),
               InvalidArgumentError);
  EXPECT_THROW(reducedStatevector<double>(full, {2}, "0"), QubitRangeError);
  EXPECT_THROW(reducedStatevector<double>(full, {0}, "x"),
               InvalidArgumentError);
  EXPECT_THROW(
      reducedStatevector<double>(std::vector<C>(3), {0}, "0"),
      InvalidArgumentError);
}

class ReducedSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReducedSweep, RandomProductStatesRoundTrip) {
  const int nbQubits = GetParam();
  random::Rng rng(static_cast<std::uint64_t>(nbQubits) * 7 + 1);
  // Build |bits> (x) v with v on the *last* qubit; vary known qubits count.
  const auto v = qclab::test::randomState<double>(1, rng);
  std::string bits;
  for (int q = 0; q + 1 < nbQubits; ++q) {
    bits += rng.uniformInt(2) ? '1' : '0';
  }
  auto full = basisState<double>(bits);
  full = dense::kron(full, v);
  std::vector<int> known(static_cast<std::size_t>(nbQubits - 1));
  for (int q = 0; q + 1 < nbQubits; ++q) known[static_cast<std::size_t>(q)] = q;
  const auto reduced = reducedStatevector<double>(full, known, bits);
  qclab::test::expectStateNear(reduced, v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReducedSweep, ::testing::Range(2, 9));

}  // namespace
}  // namespace qclab

/// \file test_trajectory.cpp
/// \brief Unit, determinism, and fusion property tests of the Monte Carlo
/// trajectory engine (noise/trajectory.hpp).
///
/// The determinism tests pin the engine's central contract: per-trajectory
/// jump() streams plus serial fixed-order reductions make the aggregate
/// result bit-identical for every OpenMP thread count and schedule.  The
/// fusion fuzz test pins the second contract: under per-gate noise the
/// scheduler has no multi-gate run to merge, so fusion on and off agree
/// bit for bit per seed.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

#include "qclab/qclab.hpp"
#include "test_helpers.hpp"

namespace qclab {
namespace {

using noise::KrausChannel;
using noise::NoiseModel;
using noise::TrajectoryOptions;
using noise::TrajectoryResult;
using noise::TrajectorySimulator;

std::vector<int> allQubits(int n) {
  std::vector<int> qubits(static_cast<std::size_t>(n));
  std::iota(qubits.begin(), qubits.end(), 0);
  return qubits;
}

/// A noisy test circuit mixing gates, a mid-circuit measurement, and a
/// reset, driven by `rng`.
QCircuit<double> randomNoisyCircuit(int nbQubits, random::Rng& rng) {
  QCircuit<double> circuit(nbQubits);
  test::addRandomGates(circuit, 6, rng);
  circuit.push_back(Measurement<double>(
      static_cast<int>(rng.uniformInt(nbQubits))));
  test::addRandomGates(circuit, 6, rng);
  if (rng.uniform() < 0.5) {
    circuit.push_back(Reset<double>(
        static_cast<int>(rng.uniformInt(nbQubits))));
    test::addRandomGates(circuit, 3, rng);
  }
  for (int q = 0; q < nbQubits; ++q) {
    circuit.push_back(Measurement<double>(q));
  }
  return circuit;
}

/// A random single-qubit channel for the fuzz tests.
KrausChannel<double> randomChannel(random::Rng& rng) {
  const double p = rng.uniform(0.0, 0.3);
  switch (rng.uniformInt(6)) {
    case 0: return KrausChannel<double>::bitFlip(p);
    case 1: return KrausChannel<double>::phaseFlip(p);
    case 2: return KrausChannel<double>::bitPhaseFlip(p);
    case 3: return KrausChannel<double>::depolarizing(p);
    case 4: return KrausChannel<double>::amplitudeDamping(p);
    default: return KrausChannel<double>::phaseDamping(p);
  }
}

void expectBitIdentical(const TrajectoryResult<double>& a,
                        const TrajectoryResult<double>& b) {
  ASSERT_EQ(a.nbTrajectories(), b.nbTrajectories());
  EXPECT_TRUE(a.results() == b.results());
  EXPECT_TRUE(a.probabilities() == b.probabilities());
  EXPECT_TRUE(a.expectations() == b.expectations());
}

// ---- basic engine behavior --------------------------------------------

TEST(Trajectory, DeterministicCircuitGivesExactCounts) {
  QCircuit<double> circuit(3);
  circuit.push_back(qgates::PauliX<double>(0));
  for (int q = 0; q < 3; ++q) {
    circuit.push_back(Measurement<double>(q));
  }
  TrajectoryOptions options;
  options.nbTrajectories = 64;
  const TrajectorySimulator<double> simulator(circuit, {}, options);
  const auto result = simulator.run("000");
  EXPECT_EQ(result.nbTrajectories(), 64u);
  EXPECT_EQ(result.nbMeasurements(), 3u);
  const auto counts = result.counts();
  ASSERT_EQ(counts.size(), 8u);
  EXPECT_EQ(counts[4], 64u);  // outcome "100", MSB first
  const auto map = result.countsMap();
  ASSERT_EQ(map.size(), 1u);
  EXPECT_EQ(map.at("100"), 64u);
}

TEST(Trajectory, InitialBitstringIsRespected) {
  QCircuit<double> circuit(2);
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  TrajectoryOptions options;
  options.nbTrajectories = 16;
  const TrajectorySimulator<double> simulator(circuit, {}, options);
  EXPECT_EQ(simulator.run("01").countsMap().at("01"), 16u);
  EXPECT_EQ(simulator.run("10").countsMap().at("10"), 16u);
}

TEST(Trajectory, BellCountsAreFair) {
  QCircuit<double> circuit(2);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(qgates::CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  TrajectoryOptions options;
  options.seed = 5;
  options.nbTrajectories = 2000;
  const TrajectorySimulator<double> simulator(circuit, {}, options);
  const auto counts = simulator.run("00").counts();
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[0] + counts[3], 2000u);
  EXPECT_NEAR(static_cast<double>(counts[0]), 1000.0, 150.0);
}

TEST(Trajectory, NoiselessMarginalsMatchTheStateVector) {
  random::Rng rng(11);
  QCircuit<double> circuit(3);
  test::addRandomGates(circuit, 10, rng);
  const auto state = circuit.simulate("000").branches().front().state;

  TrajectoryOptions options;
  options.nbTrajectories = 4;  // noiseless: every trajectory is identical
  options.marginalQubits = allQubits(3);
  const TrajectorySimulator<double> simulator(circuit, {}, options);
  const auto probabilities = simulator.run("000").probabilities();
  ASSERT_EQ(probabilities.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(probabilities[i], std::norm(state[i]), test::tol<double>());
  }
}

TEST(Trajectory, ResetReinitializesTheQubit) {
  QCircuit<double> circuit(2);
  circuit.push_back(qgates::PauliX<double>(0));
  circuit.push_back(Reset<double>(0));
  circuit.push_back(Measurement<double>(0));
  TrajectoryOptions options;
  options.nbTrajectories = 32;
  const TrajectorySimulator<double> simulator(circuit, {}, options);
  EXPECT_EQ(simulator.run("00").countsMap().at("0"), 32u);
}

TEST(Trajectory, SampleCountsDrawsFromTheAveragedMarginal) {
  QCircuit<double> circuit(2);
  circuit.push_back(qgates::PauliX<double>(1));
  TrajectoryOptions options;
  options.nbTrajectories = 8;
  options.marginalQubits = allQubits(2);
  const TrajectorySimulator<double> simulator(circuit, {}, options);
  const auto result = simulator.run("00");
  const auto sampled = result.sampleCounts(1000, 3);
  ASSERT_EQ(sampled.size(), 4u);
  EXPECT_EQ(sampled[1], 1000u);  // |01> is certain
}

TEST(Trajectory, ExpectationTracksTheNoiseStrength) {
  // X then bit-flip gate noise with p = 1 flips back: <Z> = +1; with
  // p = 0 the X survives: <Z> = -1.
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::PauliX<double>(0));
  Observable<double> z(1);
  z.add("Z", 1.0);
  TrajectoryOptions options;
  options.nbTrajectories = 16;

  const TrajectorySimulator<double> certainFlip(
      circuit, NoiseModel<double>::bitFlip(1.0), options);
  EXPECT_NEAR(certainFlip.run("0", z).expectation(), 1.0,
              test::tol<double>());

  const TrajectorySimulator<double> noiseless(
      circuit, NoiseModel<double>::bitFlip(0.0), options);
  const auto result = noiseless.run("0", z);
  EXPECT_NEAR(result.expectation(), -1.0, test::tol<double>());
  EXPECT_EQ(result.expectations().size(), 16u);
}

TEST(Trajectory, DepolarizingShrinksTheExpectation) {
  // One X gate under depolarizing(p): <Z> averages to -(1 - p) as N grows.
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::PauliX<double>(0));
  Observable<double> z(1);
  z.add("Z", 1.0);
  TrajectoryOptions options;
  options.seed = 21;
  options.nbTrajectories = 4000;
  const TrajectorySimulator<double> simulator(
      circuit, NoiseModel<double>::depolarizing(0.2), options);
  EXPECT_NEAR(simulator.run("0", z).expectation(), -0.8, 0.03);
}

TEST(Trajectory, MeasurementNoiseFlipsRecordedOutcomes) {
  // Readout error on a deterministic |1>: outcome "0" shows up with
  // probability p10.
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::PauliX<double>(0));
  circuit.push_back(Measurement<double>(0));
  NoiseModel<double> model;
  model.measurementNoise = KrausChannel<double>::readout(0.0, 0.25);
  TrajectoryOptions options;
  options.seed = 9;
  options.nbTrajectories = 4000;
  const TrajectorySimulator<double> simulator(circuit, model, options);
  const auto counts = simulator.run("0").counts();
  EXPECT_NEAR(static_cast<double>(counts[0]), 1000.0, 120.0);
}

TEST(Trajectory, XBasisMeasurementNoiseActsInMeasurementFrame) {
  // |+> measured in the X basis records '+' (0) with probability 1 - p
  // under bit-flip readout noise; before the ordering fix the channel
  // commuted with the basis change and was a no-op on the distribution.
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0, 'x'));
  NoiseModel<double> model;
  model.measurementNoise = KrausChannel<double>::bitFlip(0.2);
  TrajectoryOptions options;
  options.seed = 17;
  options.nbTrajectories = 4000;
  const TrajectorySimulator<double> simulator(circuit, model, options);
  const auto counts = simulator.run("0").counts();
  EXPECT_NEAR(static_cast<double>(counts[1]) / 4000.0, 0.2, 0.03);
}

TEST(Trajectory, Validation) {
  QCircuit<double> circuit(2);
  circuit.push_back(qgates::Hadamard<double>(0));

  TrajectoryOptions zeroTrajectories;
  zeroTrajectories.nbTrajectories = 0;
  EXPECT_THROW(TrajectorySimulator<double>(circuit, {}, zeroTrajectories),
               InvalidArgumentError);

  TrajectoryOptions badMarginal;
  badMarginal.marginalQubits = {5};
  EXPECT_THROW(TrajectorySimulator<double>(circuit, {}, badMarginal),
               QubitRangeError);

  const TrajectorySimulator<double> simulator(circuit, {}, {});
  EXPECT_THROW(simulator.run("0"), InvalidArgumentError);
  EXPECT_THROW(simulator.run("0x"), InvalidArgumentError);
  EXPECT_THROW(simulator.run("00").probabilities(), InvalidArgumentError);
  EXPECT_THROW(simulator.run("00").counts(), InvalidArgumentError);
  EXPECT_THROW(simulator.run("00").expectation(), InvalidArgumentError);
}

// ---- determinism ------------------------------------------------------

TEST(TrajectoryDeterminism, SameSeedIsBitIdentical) {
  random::Rng rng(23);
  const auto circuit = randomNoisyCircuit(4, rng);
  NoiseModel<double> model = NoiseModel<double>::depolarizing(0.05);
  model.measurementNoise = KrausChannel<double>::readout(0.02);
  TrajectoryOptions options;
  options.seed = 99;
  options.nbTrajectories = 64;
  options.marginalQubits = allQubits(4);
  const TrajectorySimulator<double> simulator(circuit, model, options);
  expectBitIdentical(simulator.run("0000"), simulator.run("0000"));
}

TEST(TrajectoryDeterminism, DifferentSeedsDiffer) {
  random::Rng rng(29);
  const auto circuit = randomNoisyCircuit(3, rng);
  TrajectoryOptions a;
  a.seed = 1;
  a.nbTrajectories = 128;
  TrajectoryOptions b = a;
  b.seed = 2;
  const NoiseModel<double> model = NoiseModel<double>::depolarizing(0.2);
  const auto resultA =
      TrajectorySimulator<double>(circuit, model, a).run("000");
  const auto resultB =
      TrajectorySimulator<double>(circuit, model, b).run("000");
  EXPECT_NE(resultA.results(), resultB.results());
}

#ifdef QCLAB_HAS_OPENMP

TEST(TrajectoryDeterminism, ThreadCountInvariance) {
  random::Rng rng(31);
  const auto circuit = randomNoisyCircuit(4, rng);
  NoiseModel<double> model = NoiseModel<double>::bitFlip(0.1);
  model.measurementNoise = KrausChannel<double>::readout(0.05);

  std::vector<TrajectoryResult<double>> runs;
  for (int threads : {1, 2, 8}) {
    TrajectoryOptions options;
    options.seed = 7;
    options.nbTrajectories = 96;
    options.nbThreads = threads;
    options.marginalQubits = allQubits(4);
    const TrajectorySimulator<double> simulator(circuit, model, options);
    runs.push_back(simulator.run("0000"));
  }
  expectBitIdentical(runs[0], runs[1]);
  expectBitIdentical(runs[0], runs[2]);
}

TEST(TrajectoryDeterminism, ScheduleInvariance) {
  random::Rng rng(37);
  const auto circuit = randomNoisyCircuit(3, rng);
  const NoiseModel<double> model = NoiseModel<double>::depolarizing(0.1);

  omp_sched_t originalKind;
  int originalChunk;
  omp_get_schedule(&originalKind, &originalChunk);

  std::vector<TrajectoryResult<double>> runs;
  const std::pair<omp_sched_t, int> schedules[] = {
      {omp_sched_static, 0},
      {omp_sched_static, 1},
      {omp_sched_dynamic, 1},
      {omp_sched_guided, 2},
  };
  for (const auto& [kind, chunk] : schedules) {
    omp_set_schedule(kind, chunk);
    TrajectoryOptions options;
    options.seed = 3;
    options.nbTrajectories = 64;
    options.nbThreads = 4;
    options.marginalQubits = allQubits(3);
    const TrajectorySimulator<double> simulator(circuit, model, options);
    runs.push_back(simulator.run("000"));
  }
  omp_set_schedule(originalKind, originalChunk);

  for (std::size_t i = 1; i < runs.size(); ++i) {
    expectBitIdentical(runs[0], runs[i]);
  }
}

#endif  // QCLAB_HAS_OPENMP

// ---- fusion properties ------------------------------------------------

TEST(TrajectoryFusion, OnOffBitIdenticalUnderGateNoiseFuzz) {
  // Under per-gate noise every run is a single gate, so fusion on and off
  // must produce bit-for-bit identical trajectories for any seed.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    random::Rng rng(1000 + seed);
    const int n = 2 + static_cast<int>(rng.uniformInt(4));
    const auto circuit = randomNoisyCircuit(n, rng);
    NoiseModel<double> model;
    model.gateNoise = randomChannel(rng);
    if (rng.uniform() < 0.5) {
      model.measurementNoise = randomChannel(rng);
    }
    TrajectoryOptions unfused;
    unfused.seed = seed;
    unfused.nbTrajectories = 32;
    unfused.marginalQubits = allQubits(n);
    TrajectoryOptions fused = unfused;
    fused.fusion = true;

    const auto resultUnfused =
        TrajectorySimulator<double>(circuit, model, unfused)
            .run(std::string(static_cast<std::size_t>(n), '0'));
    const auto resultFused =
        TrajectorySimulator<double>(circuit, model, fused)
            .run(std::string(static_cast<std::size_t>(n), '0'));
    expectBitIdentical(resultUnfused, resultFused);
  }
}

TEST(TrajectoryFusion, MeasurementOnlyNoiseEngagesFusedBlocks) {
  // With no gate noise the gate runs genuinely fuse; recorded outcomes
  // stay identical per seed and the marginals agree to rounding.
  random::Rng rng(41);
  const auto circuit = randomNoisyCircuit(4, rng);
  NoiseModel<double> model;
  model.measurementNoise = KrausChannel<double>::readout(0.1);

  TrajectoryOptions unfused;
  unfused.seed = 13;
  unfused.nbTrajectories = 48;
  unfused.marginalQubits = allQubits(4);
  TrajectoryOptions fused = unfused;
  fused.fusion = true;

  obs::metrics().reset();
  const auto resultUnfused =
      TrajectorySimulator<double>(circuit, model, unfused).run("0000");
  const std::uint64_t fusionBlocksBefore = obs::metrics().fusionBlocks();
  const auto resultFused =
      TrajectorySimulator<double>(circuit, model, fused).run("0000");

  if (obs::kEnabled) {
    EXPECT_EQ(fusionBlocksBefore, 0u);
    EXPECT_GT(obs::metrics().fusionBlocks(), 0u);
  }
  EXPECT_EQ(resultUnfused.results(), resultFused.results());
  const auto& a = resultUnfused.probabilities();
  const auto& b = resultFused.probabilities();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], test::tol<double>());
  }
}

// ---- observability ----------------------------------------------------

TEST(TrajectoryObs, CountersHistogramsAndMemoryAreRecorded) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs disabled at compile time";
  QCircuit<double> circuit(5);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));

  obs::metrics().reset();
  obs::latencyHistograms().reset();
  TrajectoryOptions options;
  options.nbTrajectories = 24;
  const TrajectorySimulator<double> simulator(
      circuit, NoiseModel<double>::depolarizing(0.1), options);
  simulator.run("00000");

  EXPECT_EQ(obs::metrics().trajectoryRuns(), 1u);
  EXPECT_EQ(obs::metrics().trajectoriesSimulated(), 24u);
  // depolarizing noise after the H: one channel application per
  // trajectory; measurement adds none (no measurement noise configured).
  EXPECT_EQ(obs::metrics().noiseChannelApplications(), 24u);
  const auto snapshot = obs::latencyHistograms()
                            .histogram(sim::KernelPath::kTrajectory)
                            .snapshot();
  EXPECT_EQ(snapshot.count, 24u);
  // Each worker thread attributed its 2^5-amplitude state buffer.
  EXPECT_GE(obs::metrics().peakStateBytes(),
            (std::uint64_t{1} << 5) * sizeof(std::complex<double>));
  EXPECT_EQ(obs::metrics().currentStateBytes(), 0u);
}

}  // namespace
}  // namespace qclab

/// \file test_qcircuit.cpp
/// \brief Unit tests for the QCircuit container: construction, editing,
/// nesting, unitary extraction, inversion, and validation.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;
using namespace qclab::qgates;

TEST(QCircuit, ConstructionAndProperties) {
  QCircuit<double> circuit(3);
  EXPECT_EQ(circuit.nbQubits(), 3);
  EXPECT_EQ(circuit.offset(), 0);
  EXPECT_EQ(circuit.nbObjects(), 0u);
  EXPECT_EQ(circuit.qubits(), (std::vector<int>{0, 1, 2}));
  EXPECT_THROW(QCircuit<double>(0), InvalidArgumentError);
  EXPECT_THROW(QCircuit<double>(2, -1), InvalidArgumentError);
}

TEST(QCircuit, PushBackBothStyles) {
  QCircuit<double> circuit(2);
  // QCLAB++ style with unique_ptr (the paper's §4 snippet).
  circuit.push_back(std::make_unique<Hadamard<double>>(0));
  // Convenience by-value style.
  circuit.push_back(CX<double>(0, 1));
  EXPECT_EQ(circuit.nbObjects(), 2u);
  EXPECT_EQ(circuit.objectAt(0).objectType(), ObjectType::kGate);
}

TEST(QCircuit, PushBackValidatesFit) {
  QCircuit<double> circuit(2);
  EXPECT_THROW(circuit.push_back(Hadamard<double>(2)), InvalidArgumentError);
  EXPECT_THROW(circuit.push_back(CX<double>(0, 5)), InvalidArgumentError);
  EXPECT_NO_THROW(circuit.push_back(CX<double>(0, 1)));
}

TEST(QCircuit, InsertEraseClear) {
  QCircuit<double> circuit(1);
  circuit.push_back(PauliX<double>(0));
  circuit.push_back(PauliZ<double>(0));
  circuit.insert(1, std::make_unique<Hadamard<double>>(0));
  EXPECT_EQ(circuit.nbObjects(), 3u);
  // X H Z = order check through the matrix: first pushed is applied first.
  const auto expected = dense::pauliZ<double>() *
                        Hadamard<double>(0).matrix() *
                        dense::pauliX<double>();
  qclab::test::expectMatrixNear(circuit.matrix(), expected);
  circuit.erase(1);
  EXPECT_EQ(circuit.nbObjects(), 2u);
  EXPECT_THROW(circuit.erase(5), InvalidArgumentError);
  EXPECT_THROW(circuit.insert(9, std::make_unique<Hadamard<double>>(0)),
               InvalidArgumentError);
  circuit.clear();
  EXPECT_EQ(circuit.nbObjects(), 0u);
}

TEST(QCircuit, MatrixOfBellCircuit) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  const auto m = circuit.matrix();
  const double h = 1.0 / std::sqrt(2.0);
  // Columns: |00> -> (|00> + |11>)/sqrt(2).
  EXPECT_NEAR(std::abs(m(0, 0) - C(h)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(m(3, 0) - C(h)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(m(1, 0)), 0.0, 1e-14);
  EXPECT_TRUE(m.isUnitary(1e-13));
}

TEST(QCircuit, MatrixThrowsOnMeasurement) {
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0));
  EXPECT_THROW(circuit.matrix(), InvalidArgumentError);
  QCircuit<double> withReset(1);
  withReset.push_back(Reset<double>(0));
  EXPECT_THROW(withReset.matrix(), InvalidArgumentError);
}

TEST(QCircuit, InvertedReversesAndInverts) {
  auto circuit = qclab::test::randomCircuit<double>(3, 15, 7);
  const auto inverse = circuit.inverted();
  QCircuit<double> both(3);
  both.push_back(QCircuit<double>(circuit));
  both.push_back(QCircuit<double>(inverse));
  qclab::test::expectMatrixNear(both.matrix(), M::identity(8), 1e-11);
}

TEST(QCircuit, InvertedThrowsOnMeasurement) {
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0));
  EXPECT_THROW(circuit.inverted(), InvalidArgumentError);
}

TEST(QCircuit, CloneIsDeep) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  auto cloned = circuit.clone();
  circuit.push_back(CX<double>(0, 1));
  EXPECT_EQ(static_cast<QCircuit<double>&>(*cloned).nbObjects(), 1u);
}

TEST(QCircuit, CopySemantics) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  QCircuit<double> copy(circuit);
  copy.push_back(CX<double>(0, 1));
  EXPECT_EQ(circuit.nbObjects(), 1u);
  EXPECT_EQ(copy.nbObjects(), 2u);
  circuit = copy;
  EXPECT_EQ(circuit.nbObjects(), 2u);
}

TEST(QCircuit, NestedSubCircuitWithOffset) {
  // A Bell-pair preparation on qubits 1-2 of a 3-qubit register.
  QCircuit<double> sub(2, 1);
  sub.push_back(Hadamard<double>(0));
  sub.push_back(CX<double>(0, 1));

  QCircuit<double> parent(3);
  parent.push_back(QCircuit<double>(sub));

  QCircuit<double> direct(3);
  direct.push_back(Hadamard<double>(1));
  direct.push_back(CX<double>(1, 2));

  qclab::test::expectMatrixNear(parent.matrix(), direct.matrix());
}

TEST(QCircuit, DoublyNestedOffsetsAccumulate) {
  QCircuit<double> inner(1, 1);  // qubit 1 of its parent
  inner.push_back(PauliX<double>(0));
  QCircuit<double> middle(2, 1);  // qubits 1-2 of the root
  middle.push_back(QCircuit<double>(inner));
  QCircuit<double> root(3);
  root.push_back(QCircuit<double>(middle));

  QCircuit<double> direct(3);
  direct.push_back(PauliX<double>(2));
  qclab::test::expectMatrixNear(root.matrix(), direct.matrix());
}

TEST(QCircuit, SubCircuitMustFit) {
  QCircuit<double> sub(2, 2);
  sub.push_back(Hadamard<double>(0));
  QCircuit<double> parent(3);
  EXPECT_THROW(parent.push_back(QCircuit<double>(sub)),
               InvalidArgumentError);
}

TEST(QCircuit, BlockFlags) {
  QCircuit<double> circuit(2);
  EXPECT_FALSE(circuit.isBlock());
  circuit.asBlock("oracle");
  EXPECT_TRUE(circuit.isBlock());
  EXPECT_EQ(circuit.label(), "oracle");
  circuit.unBlock();
  EXPECT_FALSE(circuit.isBlock());
}

TEST(QCircuit, NbObjectsRecursive) {
  QCircuit<double> sub(2);
  sub.push_back(Hadamard<double>(0));
  sub.push_back(CX<double>(0, 1));
  QCircuit<double> parent(2);
  parent.push_back(Hadamard<double>(1));
  parent.push_back(QCircuit<double>(sub));
  EXPECT_EQ(parent.nbObjects(), 2u);
  EXPECT_EQ(parent.nbObjectsRecursive(), 3u);
}

TEST(QCircuit, SimulateValidatesInput) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  EXPECT_THROW(circuit.simulate("0"), InvalidArgumentError);
  EXPECT_THROW(circuit.simulate("001"), InvalidArgumentError);
  EXPECT_THROW(circuit.simulate(std::vector<C>(3)), InvalidArgumentError);
  // Unnormalized state rejected.
  std::vector<C> bad(4);
  bad[0] = C(2.0);
  EXPECT_THROW(circuit.simulate(bad), InvalidArgumentError);
}

TEST(QCircuit, QasmHeaderAndBody) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  const auto qasm = circuit.toQASM();
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
}

TEST(QCircuit, QasmNestedOffsets) {
  QCircuit<double> sub(1, 1);
  sub.push_back(PauliX<double>(0));
  QCircuit<double> parent(2);
  parent.push_back(QCircuit<double>(sub));
  const auto qasm = parent.toQASM();
  EXPECT_NE(qasm.find("x q[1];"), std::string::npos);
}

class RandomCircuitUnitaritySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomCircuitUnitaritySweep, MatrixIsUnitary) {
  const auto [nbQubits, seed] = GetParam();
  const auto circuit = qclab::test::randomCircuit<double>(nbQubits, 20, seed);
  EXPECT_TRUE(circuit.matrix().isUnitary(1e-11));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomCircuitUnitaritySweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 6),
                       ::testing::Values(11, 22)));

}  // namespace
}  // namespace qclab

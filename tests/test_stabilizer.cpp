/// \file test_stabilizer.cpp
/// \brief Unit tests for the CHP stabilizer tableau and its circuit
/// adapter, cross-validated against the state-vector simulator on random
/// Clifford circuits.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab::stabilizer {
namespace {

using namespace qclab::qgates;

/// Appends `length` random Clifford gates to `circuit`.
void addRandomCliffords(QCircuit<double>& circuit, int length,
                        random::Rng& rng) {
  const int n = circuit.nbQubits();
  auto qubit = [&]() { return static_cast<int>(rng.uniformInt(n)); };
  auto pair = [&]() {
    const int a = qubit();
    int b = qubit();
    while (b == a) b = qubit();
    return std::pair<int, int>{a, b};
  };
  for (int i = 0; i < length; ++i) {
    switch (rng.uniformInt(11)) {
      case 0: circuit.push_back(Hadamard<double>(qubit())); break;
      case 1: circuit.push_back(SGate<double>(qubit())); break;
      case 2: circuit.push_back(SdgGate<double>(qubit())); break;
      case 3: circuit.push_back(PauliX<double>(qubit())); break;
      case 4: circuit.push_back(PauliY<double>(qubit())); break;
      case 5: circuit.push_back(PauliZ<double>(qubit())); break;
      case 6: circuit.push_back(SX<double>(qubit())); break;
      case 7: {
        const auto [a, b] = pair();
        circuit.push_back(CX<double>(a, b));
        break;
      }
      case 8: {
        const auto [a, b] = pair();
        circuit.push_back(CZ<double>(a, b));
        break;
      }
      case 9: {
        const auto [a, b] = pair();
        circuit.push_back(SWAP<double>(a, b));
        break;
      }
      default: {
        const auto [a, b] = pair();
        circuit.push_back(iSWAP<double>(a, b));
        break;
      }
    }
  }
}

TEST(Tableau, InitialStabilizersAreZ) {
  Tableau tableau(3);
  EXPECT_EQ(tableau.stabilizer(0), "+ZII");
  EXPECT_EQ(tableau.stabilizer(1), "+IZI");
  EXPECT_EQ(tableau.stabilizer(2), "+IIZ");
  EXPECT_TRUE(tableau.isDeterministic(0));
}

TEST(Tableau, HadamardMakesXStabilizer) {
  Tableau tableau(2);
  tableau.h(0);
  EXPECT_EQ(tableau.stabilizer(0), "+XI");
  EXPECT_FALSE(tableau.isDeterministic(0));
  EXPECT_TRUE(tableau.isDeterministic(1));
}

TEST(Tableau, BellStateStabilizers) {
  Tableau tableau(2);
  tableau.h(0);
  tableau.cx(0, 1);
  EXPECT_EQ(tableau.stabilizer(0), "+XX");
  EXPECT_EQ(tableau.stabilizer(1), "+ZZ");
}

TEST(Tableau, PauliFlipsSigns) {
  Tableau tableau(1);
  tableau.x(0);  // |1>: stabilizer -Z
  EXPECT_EQ(tableau.stabilizer(0), "-Z");
  random::Rng rng(1);
  EXPECT_EQ(tableau.measure(0, rng), 1);
}

TEST(Tableau, DeterministicMeasurements) {
  Tableau tableau(2);
  random::Rng rng(2);
  EXPECT_EQ(tableau.measure(0, rng), 0);
  tableau.x(1);
  EXPECT_EQ(tableau.measure(1, rng), 1);
  // |+> measured in X basis (h, measure, h) is deterministic 0.
  tableau.h(0);
  tableau.h(0);  // back to |0>
  EXPECT_EQ(tableau.measure(0, rng), 0);
}

TEST(Tableau, BellCorrelations) {
  random::Rng rng(3);
  int ones = 0;
  for (int shot = 0; shot < 200; ++shot) {
    Tableau tableau(2);
    tableau.h(0);
    tableau.cx(0, 1);
    const int first = tableau.measure(0, rng);
    const int second = tableau.measure(1, rng);
    EXPECT_EQ(first, second);  // perfectly correlated
    ones += first;
  }
  EXPECT_GT(ones, 60);   // roughly half
  EXPECT_LT(ones, 140);
}

TEST(Tableau, RepeatedMeasurementIsStable) {
  random::Rng rng(4);
  Tableau tableau(1);
  tableau.h(0);
  const int first = tableau.measure(0, rng);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tableau.measure(0, rng), first);
  }
}

TEST(Tableau, ResetGivesZero) {
  random::Rng rng(5);
  for (int shot = 0; shot < 20; ++shot) {
    Tableau tableau(2);
    tableau.h(0);
    tableau.cx(0, 1);
    tableau.reset(0, rng);
    EXPECT_EQ(tableau.measure(0, rng), 0);
  }
}

TEST(Tableau, SDGAndSXAgreeWithDefinitions) {
  // S Sdg = I: stabilizers return to +Z after h s sdg h.
  Tableau tableau(1);
  tableau.h(0);
  tableau.s(0);
  tableau.sdg(0);
  tableau.h(0);
  EXPECT_EQ(tableau.stabilizer(0), "+Z");
  // sx sx = x.
  Tableau other(1);
  other.sx(0);
  other.sx(0);
  EXPECT_EQ(other.stabilizer(0), "-Z");
}

TEST(StabilizerSimulator, GhzParity) {
  const auto circuit = [] {
    auto ghz = qclab::algorithms::ghz<double>(5);
    for (int q = 0; q < 5; ++q) ghz.push_back(Measurement<double>(q));
    return ghz;
  }();
  random::Rng rng(6);
  const auto histogram = sampleCounts(circuit, 200, rng);
  // Only all-zeros and all-ones can appear.
  for (const auto& [outcome, count] : histogram) {
    EXPECT_TRUE(outcome == "00000" || outcome == "11111") << outcome;
    EXPECT_GT(count, 0u);
  }
  EXPECT_EQ(histogram.size(), 2u);
}

TEST(StabilizerSimulator, MatchesStateVectorOnPaperE1) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  random::Rng rng(7);
  const auto histogram = sampleCounts(circuit, 1000, rng);
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_NEAR(static_cast<double>(histogram.at("00")) / 1000.0, 0.5, 0.06);
  EXPECT_NEAR(static_cast<double>(histogram.at("11")) / 1000.0, 0.5, 0.06);
}

TEST(StabilizerSimulator, QecSyndromesAllCliffords) {
  // The paper's repetition-code circuit *without* the MCX corrections is
  // pure Clifford; the syndrome matches the state-vector result exactly.
  for (int errorQubit = -1; errorQubit <= 2; ++errorQubit) {
    QCircuit<double> circuit(5);
    circuit.push_back(CX<double>(0, 1));
    circuit.push_back(CX<double>(0, 2));
    if (errorQubit >= 0) circuit.push_back(PauliX<double>(errorQubit));
    circuit.push_back(CX<double>(0, 3));
    circuit.push_back(CX<double>(1, 3));
    circuit.push_back(CX<double>(0, 4));
    circuit.push_back(CX<double>(2, 4));
    circuit.push_back(Measurement<double>(3));
    circuit.push_back(Measurement<double>(4));
    random::Rng rng(8);
    Tableau tableau(5);
    const auto outcome = simulateShot(circuit, tableau, rng);
    EXPECT_EQ(outcome, qclab::algorithms::expectedSyndrome(errorQubit));
  }
}

TEST(StabilizerSimulator, XBasisMeasurement) {
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));           // |+>
  circuit.push_back(Measurement<double>(0, 'x'));   // deterministic 0
  random::Rng rng(9);
  for (int shot = 0; shot < 20; ++shot) {
    Tableau tableau(1);
    EXPECT_EQ(simulateShot(circuit, tableau, rng), "0");
  }
}

TEST(StabilizerSimulator, YBasisMeasurement) {
  // S H |0> = (|0> + i|1>)/sqrt(2), the +1 eigenstate of Y.
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(SGate<double>(0));
  circuit.push_back(Measurement<double>(0, 'y'));
  random::Rng rng(10);
  for (int shot = 0; shot < 20; ++shot) {
    Tableau tableau(1);
    EXPECT_EQ(simulateShot(circuit, tableau, rng), "0");
  }
}

TEST(StabilizerSimulator, RejectsNonClifford) {
  QCircuit<double> circuit(1);
  circuit.push_back(TGate<double>(0));
  random::Rng rng(11);
  Tableau tableau(1);
  EXPECT_THROW(simulateShot(circuit, tableau, rng), InvalidArgumentError);
  QCircuit<double> rotation(1);
  rotation.push_back(RotationX<double>(0, 0.3));
  EXPECT_THROW(simulateShot(rotation, tableau, rng), InvalidArgumentError);
  // The refusal carries the dispatcher's typed error, not just the base.
  EXPECT_THROW(simulateShot(rotation, tableau, rng), UnsupportedGateError);
}

TEST(StabilizerSimulator, ValueCliffordRotationsApply) {
  // Parametric gates at Clifford angles run on the tableau (they used to
  // throw): RY(pi/2) == H Z and RZZ(pi/2) == (S (x) S) CZ up to phase.
  QCircuit<double> circuit(2);
  circuit.push_back(RotationY<double>(0, M_PI_2));
  circuit.push_back(RotationZZ<double>(0, 1, M_PI_2));
  circuit.push_back(RotationX<double>(1, M_PI));
  circuit.push_back(CRotationZ<double>(0, 1, M_PI));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));

  // Statevector reference distribution.
  const auto simulation = circuit.simulate("00");
  std::map<std::string, double> probabilities;
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    probabilities[simulation.result(i)] = simulation.probability(i);
  }
  random::Rng rng(21);
  const auto histogram = sampleCounts(circuit, 400, rng);
  for (const auto& [outcome, count] : histogram) {
    ASSERT_TRUE(probabilities.count(outcome))
        << "impossible outcome " << outcome;
  }
  for (const auto& [outcome, probability] : probabilities) {
    const double frequency =
        histogram.count(outcome)
            ? static_cast<double>(histogram.at(outcome)) / 400.0
            : 0.0;
    EXPECT_NEAR(frequency, probability, 0.1) << outcome;
  }
}

TEST(Tableau, ForcedMeasurementBranches) {
  // measureForced is the dispatcher's branch-forking primitive: both
  // outcomes of a 50/50 measurement are explorable, and deterministic
  // outcomes ignore the requested value.
  Tableau plus(1);
  plus.h(0);
  Tableau copy = plus;
  EXPECT_EQ(plus.measureForced(0, 0), 0);
  EXPECT_EQ(plus.measureForced(0, 0), 0);  // collapsed: now deterministic
  EXPECT_EQ(copy.measureForced(0, 1), 1);
  EXPECT_EQ(copy.measureForced(0, 0), 1);  // desired ignored once collapsed
  Tableau zero(1);
  EXPECT_EQ(zero.measureForced(0, 1), 0);  // deterministic |0>
}

/// Cross validation: on random Clifford circuits, any outcome the tableau
/// produces must have nonzero probability under the state-vector
/// simulation, and deterministic qubits must agree.
class CliffordCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CliffordCrossValidation, OutcomesConsistentWithStateVector) {
  const int n = 4;
  random::Rng circuitRng(static_cast<std::uint64_t>(GetParam()));
  QCircuit<double> circuit(n);
  addRandomCliffords(circuit, 30, circuitRng);
  for (int q = 0; q < n; ++q) circuit.push_back(Measurement<double>(q));

  // Reference outcome probabilities.
  const auto simulation = circuit.simulate(std::string(n, '0'));
  std::map<std::string, double> probabilities;
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    probabilities[simulation.result(i)] = simulation.probability(i);
  }

  random::Rng shotRng(99);
  const auto histogram = sampleCounts(circuit, 300, shotRng);
  for (const auto& [outcome, count] : histogram) {
    ASSERT_TRUE(probabilities.count(outcome))
        << "stabilizer produced impossible outcome " << outcome;
  }
  // If the state-vector says deterministic, so must the tableau.
  if (probabilities.size() == 1) {
    EXPECT_EQ(histogram.size(), 1u);
    EXPECT_EQ(histogram.begin()->first, probabilities.begin()->first);
  }
  // Frequencies approximate probabilities (loose: 300 shots).
  for (const auto& [outcome, probability] : probabilities) {
    const double frequency =
        histogram.count(outcome)
            ? static_cast<double>(histogram.at(outcome)) / 300.0
            : 0.0;
    EXPECT_NEAR(frequency, probability, 0.12) << outcome;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliffordCrossValidation,
                         ::testing::Range(1, 13));

TEST(StabilizerSimulator, ScalesToManyQubits) {
  // 200-qubit GHZ: hopeless for the state-vector simulator, instant here.
  const int n = 200;
  QCircuit<double> circuit(n);
  circuit.push_back(Hadamard<double>(0));
  for (int q = 1; q < n; ++q) circuit.push_back(CX<double>(q - 1, q));
  for (int q = 0; q < n; ++q) circuit.push_back(Measurement<double>(q));
  random::Rng rng(12);
  Tableau tableau(n);
  const auto outcome = simulateShot(circuit, tableau, rng);
  ASSERT_EQ(outcome.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(outcome == std::string(n, '0') ||
              outcome == std::string(n, '1'));
}

}  // namespace
}  // namespace qclab::stabilizer

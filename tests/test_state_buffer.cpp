/// \file test_state_buffer.cpp
/// \brief Tiered state memory tests: tier selection (options, env, auto
/// ladder), graceful heap fallback, value semantics across tiers,
/// first-touch partition coverage, prefetch advisor accounting, and
/// bit-identity of every tier against the heap path across the
/// fusion/blocking/thread-count matrix.

#include <gtest/gtest.h>

#include <complex>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"
#include "test_helpers.hpp"

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

using qclab::sim::StateBuffer;
using qclab::sim::StateTier;
using qclab::sim::StateTierOptions;

namespace {

/// RAII guard keeping QCLAB_STATE_TIER / QCLAB_STATE_DIR out of the
/// other tests.
class TierEnvGuard {
 public:
  TierEnvGuard() {
    ::unsetenv("QCLAB_STATE_TIER");
    ::unsetenv("QCLAB_STATE_DIR");
  }
  ~TierEnvGuard() {
    ::unsetenv("QCLAB_STATE_TIER");
    ::unsetenv("QCLAB_STATE_DIR");
  }
};

StateTierOptions forced(StateTier tier) {
  StateTierOptions options;
  options.tier = tier;
  return options;
}

template <typename A, typename B>
bool bitIdentical(const A& a, const B& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(a[0])) == 0;
}

}  // namespace

// ---- static partition (the first-touch affinity contract) -------------

TEST(StateBuffer, StaticPartitionCoversTheRangeContiguously) {
  for (const std::size_t total : {0u, 1u, 7u, 64u, 1000u}) {
    for (const int threads : {1, 2, 3, 8, 13}) {
      std::size_t expectedLo = 0;
      std::size_t sum = 0;
      std::size_t maxLen = 0, minLen = total + 1;
      for (int t = 0; t < threads; ++t) {
        const auto [lo, hi] = qclab::sim::staticPartition(total, threads, t);
        EXPECT_EQ(lo, expectedLo) << "gap at thread " << t;
        EXPECT_LE(lo, hi);
        expectedLo = hi;
        sum += hi - lo;
        maxLen = std::max(maxLen, hi - lo);
        minLen = std::min(minLen, hi - lo);
      }
      EXPECT_EQ(expectedLo, total);
      EXPECT_EQ(sum, total);
      // Even partition: lengths differ by at most one amplitude.
      EXPECT_LE(maxLen - minLen, 1u) << total << "/" << threads;
    }
  }
  // Degenerate thread counts get the whole range.
  const auto all = qclab::sim::staticPartition(42, 0, 0);
  EXPECT_EQ(all.first, 0u);
  EXPECT_EQ(all.second, 42u);
}

// ---- tier selection ----------------------------------------------------

TEST(StateBuffer, ExplicitTierRequestsAreHonored) {
  TierEnvGuard guard;
  const std::size_t dim = std::size_t{1} << 12;

  const auto heap = StateBuffer<double>::zeros(dim, forced(StateTier::kHeap));
  EXPECT_EQ(heap.tier(), StateTier::kHeap);
  EXPECT_EQ(heap.size(), dim);
  EXPECT_EQ(heap.advisor(), nullptr);

  const auto numa = StateBuffer<double>::zeros(dim, forced(StateTier::kNuma));
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_EQ(numa.tier(), StateTier::kNuma);
#else
  EXPECT_EQ(numa.tier(), StateTier::kHeap);
#endif
  EXPECT_EQ(numa.size(), dim);
  EXPECT_EQ(numa.advisor(), nullptr);

  const auto mmap = StateBuffer<double>::zeros(dim, forced(StateTier::kMmap));
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_EQ(mmap.tier(), StateTier::kMmap);
  EXPECT_NE(mmap.advisor(), nullptr);
#else
  EXPECT_EQ(mmap.tier(), StateTier::kHeap);
#endif
  EXPECT_EQ(mmap.size(), dim);

  // Every tier starts zeroed.
  for (const auto* buffer : {&heap, &numa, &mmap}) {
    for (std::size_t i = 0; i < dim; i += 97) {
      EXPECT_EQ((*buffer)[i], std::complex<double>(0));
    }
  }
}

TEST(StateBuffer, AutoLadderPicksBySize) {
  TierEnvGuard guard;
  StateTierOptions options;  // kAuto

  // Tiny states stay on the heap regardless of topology.
  EXPECT_EQ(qclab::sim::chooseStateTier(1 << 10, options), StateTier::kHeap);

  // Above the out-of-core threshold the ladder goes mmap.
  options.mmapMinBytes = 1 << 16;
  EXPECT_EQ(qclab::sim::chooseStateTier(1 << 20, options), StateTier::kMmap);

  // Between the NUMA floor and the mmap ceiling: numa on multi-socket
  // boxes, heap on single-node ones (this is the clean single-socket
  // skip the bench reports too).
  options.mmapMinBytes = std::size_t{1} << 40;
  options.numaMinBytes = 1 << 12;
  const StateTier middle = qclab::sim::chooseStateTier(1 << 20, options);
  if (qclab::sim::numaNodeCount() > 1) {
    EXPECT_EQ(middle, StateTier::kNuma);
  } else {
    EXPECT_EQ(middle, StateTier::kHeap);
  }

  // Explicit choice always wins over the ladder.
  options.tier = StateTier::kHeap;
  EXPECT_EQ(qclab::sim::chooseStateTier(std::size_t{1} << 40, options),
            StateTier::kHeap);
}

TEST(StateBuffer, EnvironmentTierOverride) {
  TierEnvGuard guard;

  ::setenv("QCLAB_STATE_TIER", "mmap", 1);
  EXPECT_EQ(qclab::sim::resolveStateTier(StateTier::kAuto), StateTier::kMmap);
  ::setenv("QCLAB_STATE_TIER", "heap", 1);
  EXPECT_EQ(qclab::sim::resolveStateTier(StateTier::kMmap), StateTier::kHeap);
  ::setenv("QCLAB_STATE_TIER", "numa", 1);
  EXPECT_EQ(qclab::sim::resolveStateTier(StateTier::kAuto), StateTier::kNuma);
  ::setenv("QCLAB_STATE_TIER", "auto", 1);
  EXPECT_EQ(qclab::sim::resolveStateTier(StateTier::kHeap), StateTier::kAuto);
  // Unknown values are ignored.
  ::setenv("QCLAB_STATE_TIER", "quantum-foam", 1);
  EXPECT_EQ(qclab::sim::resolveStateTier(StateTier::kHeap), StateTier::kHeap);
  ::unsetenv("QCLAB_STATE_TIER");

#if defined(__unix__) || defined(__APPLE__)
  ::setenv("QCLAB_STATE_TIER", "mmap", 1);
  const auto buffer = StateBuffer<double>::zeros(1 << 10);
  EXPECT_EQ(buffer.tier(), StateTier::kMmap);
  ::unsetenv("QCLAB_STATE_TIER");
#endif
}

TEST(StateBuffer, MmapFallsBackToHeapOnBadDirectory) {
  TierEnvGuard guard;
  StateTierOptions options = forced(StateTier::kMmap);
  options.directory = "/nonexistent/qclab-state-dir";
  const auto buffer = StateBuffer<double>::zeros(1 << 10, options);
  EXPECT_EQ(buffer.tier(), StateTier::kHeap);
  EXPECT_EQ(buffer.size(), std::size_t{1} << 10);

  // Same degradation through the environment knob.
  ::setenv("QCLAB_STATE_TIER", "mmap", 1);
  ::setenv("QCLAB_STATE_DIR", "/nonexistent/qclab-state-dir", 1);
  const auto viaEnv = StateBuffer<double>::zeros(1 << 10);
  EXPECT_EQ(viaEnv.tier(), StateTier::kHeap);
}

TEST(StateBuffer, StateDirectoryPrecedence) {
  TierEnvGuard guard;
  StateTierOptions options;
  options.directory = "/explicit";
  EXPECT_EQ(qclab::sim::stateDirectory(options), "/explicit");
  options.directory.clear();
  ::setenv("QCLAB_STATE_DIR", "/from-env", 1);
  EXPECT_EQ(qclab::sim::stateDirectory(options), "/from-env");
  ::unsetenv("QCLAB_STATE_DIR");
}

// ---- value semantics ----------------------------------------------------

TEST(StateBuffer, CopyMoveAdoptAndTakeAcrossTiers) {
  TierEnvGuard guard;
  const std::size_t dim = 1 << 8;
  std::vector<std::complex<double>> reference(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    reference[i] = {static_cast<double>(i), -static_cast<double>(i)};
  }

  for (const StateTier tier :
       {StateTier::kHeap, StateTier::kNuma, StateTier::kMmap}) {
    StateBuffer<double> buffer = StateBuffer<double>::zeros(dim, forced(tier));
    std::memcpy(buffer.data(), reference.data(),
                dim * sizeof(std::complex<double>));

    // Copy preserves the tier (when available) and the amplitudes.
    StateBuffer<double> copy(buffer);
    EXPECT_EQ(copy.tier(), buffer.tier());
    EXPECT_TRUE(bitIdentical(copy, reference));
    EXPECT_TRUE(copy == buffer);

    // Move steals the storage and empties the source.
    StateBuffer<double> moved(std::move(copy));
    EXPECT_TRUE(bitIdentical(moved, reference));
    EXPECT_TRUE(copy.empty());  // NOLINT(bugprone-use-after-move)

    // toVector reads any tier; takeVector empties the buffer.
    EXPECT_TRUE(bitIdentical(moved.toVector(), reference));
    const auto taken = moved.takeVector();
    EXPECT_TRUE(bitIdentical(taken, reference));
    EXPECT_TRUE(moved.empty());
  }

  // Adopting a vector lands on the heap tier; vector() only serves heap.
  StateBuffer<double> adopted(reference);
  EXPECT_EQ(adopted.tier(), StateTier::kHeap);
  EXPECT_TRUE(bitIdentical(adopted.vector(), reference));
  const auto mmapBuffer =
      StateBuffer<double>::zeros(dim, forced(StateTier::kMmap));
  if (mmapBuffer.tier() == StateTier::kMmap) {
    EXPECT_THROW(mmapBuffer.vector(), qclab::InvalidArgumentError);
  }
}

// ---- prefetch advisor ----------------------------------------------------

TEST(StateBuffer, AdvisorDedupsAndRetires) {
  TierEnvGuard guard;
  auto buffer =
      StateBuffer<double>::zeros(1 << 16, forced(StateTier::kMmap));
  if (buffer.tier() != StateTier::kMmap) {
    GTEST_SKIP() << "mmap tier unavailable";
  }
  auto* advisor = buffer.advisor();
  ASSERT_NE(advisor, nullptr);
  EXPECT_GT(advisor->granuleBytes(), 0u);

  if (!qclab::obs::kEnabled) GTEST_SKIP() << "obs disabled in this build";
  auto& metrics = qclab::obs::metrics();
  metrics.reset();

  const std::uint64_t bytes = std::uint64_t{1 << 16} * sizeof(std::complex<double>);
  advisor->willNeed(0, bytes);
  EXPECT_EQ(metrics.prefetchIssued(), 1u);  // one granule covers the state
  advisor->willNeed(0, bytes);
  EXPECT_EQ(metrics.prefetchIssued(), 1u);
  EXPECT_EQ(metrics.prefetchHits(), 1u);  // second walk found it resident

  // A partial range never drops a straddling granule...
  advisor->retire(0, advisor->granuleBytes() / 2);
  EXPECT_EQ(metrics.prefetchRetired(), 0u);
  // ...but the advisor's destructor releases the resident accounting.
  const std::uint64_t residentBefore =
      metrics.tierResidentBytes(StateTier::kMmap);
  EXPECT_GE(residentBefore, bytes);
}

// ---- simulation integration ----------------------------------------------

TEST(StateBuffer, SimulateOnEveryTierIsBitIdenticalToHeap) {
  TierEnvGuard guard;
  using T = double;
  const int n = 9;
  const auto circuit = qclab::test::randomCircuit<T>(n, 50, 777u);

  // The heap reference, plain and fused+blocked.
  std::vector<qclab::SimulateOptions> variants;
  {
    qclab::SimulateOptions plain;
    variants.push_back(plain);
    qclab::SimulateOptions fused;
    fused.fusion = true;
    variants.push_back(fused);
    qclab::SimulateOptions blocked;
    blocked.fusion = true;
    blocked.fusionOptions.blockQubits = 3;
    variants.push_back(blocked);
  }

  for (std::size_t v = 0; v < variants.size(); ++v) {
    qclab::SimulateOptions heapOptions = variants[v];
    heapOptions.stateTier = forced(StateTier::kHeap);
    const auto reference =
        circuit.simulate(std::string(n, '0'), heapOptions);
    for (const StateTier tier : {StateTier::kNuma, StateTier::kMmap}) {
      qclab::SimulateOptions options = variants[v];
      options.stateTier = forced(tier);
      const auto tiered = circuit.simulate(std::string(n, '0'), options);
      ASSERT_EQ(reference.nbBranches(), tiered.nbBranches());
      for (std::size_t b = 0; b < reference.nbBranches(); ++b) {
        EXPECT_EQ(reference.result(b), tiered.result(b));
        EXPECT_TRUE(bitIdentical(reference.branches()[b].state,
                                 tiered.branches()[b].state))
            << "variant " << v << " tier "
            << qclab::sim::stateTierName(tier) << " branch " << b;
      }
    }
  }
}

TEST(StateBuffer, TieredBranchSpawnAndPruneMatchesHeap) {
  TierEnvGuard guard;
  using T = double;
  // Hadamard + measurement spawns two branches; the mid-circuit reset
  // prunes.  All of it must behave identically on every tier.
  qclab::QCircuit<T> circuit(4);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  circuit.push_back(qclab::Measurement<T>(0));
  circuit.push_back(qclab::Reset<T>(1));
  circuit.push_back(qclab::qgates::Hadamard<T>(2));
  circuit.push_back(qclab::Measurement<T>(2));

  qclab::SimulateOptions heapOptions;
  heapOptions.stateTier = forced(StateTier::kHeap);
  const auto reference = circuit.simulate("0000", heapOptions);
  for (const StateTier tier : {StateTier::kNuma, StateTier::kMmap}) {
    qclab::SimulateOptions options;
    options.stateTier = forced(tier);
    const auto tiered = circuit.simulate("0000", options);
    ASSERT_EQ(reference.nbBranches(), tiered.nbBranches());
    for (std::size_t b = 0; b < reference.nbBranches(); ++b) {
      EXPECT_EQ(reference.result(b), tiered.result(b));
      EXPECT_EQ(reference.probability(b), tiered.probability(b));
      EXPECT_TRUE(bitIdentical(reference.branches()[b].state,
                               tiered.branches()[b].state));
    }
  }
}

#ifdef QCLAB_HAS_OPENMP
TEST(StateBuffer, TiersStayBitIdenticalAcrossThreadCounts) {
  TierEnvGuard guard;
  using T = double;
  const int n = 8;
  const auto circuit = qclab::test::randomCircuit<T>(n, 40, 4242u);
  qclab::SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.blockQubits = 3;
  options.stateTier = forced(StateTier::kHeap);

  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const auto reference = circuit.simulate(std::string(n, '0'), options);
  for (const int threads : {2, 3}) {
    omp_set_num_threads(threads);
    for (const StateTier tier :
         {StateTier::kHeap, StateTier::kNuma, StateTier::kMmap}) {
      options.stateTier = forced(tier);
      const auto run = circuit.simulate(std::string(n, '0'), options);
      EXPECT_TRUE(bitIdentical(reference.branches()[0].state,
                               run.branches()[0].state))
          << "threads=" << threads << " tier "
          << qclab::sim::stateTierName(tier);
    }
  }
  omp_set_num_threads(saved);
}
#endif

TEST(StateBuffer, BlockedMmapRunDrivesThePrefetchWalk) {
  if (!qclab::obs::kEnabled) GTEST_SKIP() << "obs disabled in this build";
  TierEnvGuard guard;
  using T = double;
  // Gates confined to the low window of an 8-qubit register form a
  // blocked run; on the mmap tier the executor's chunk walk must issue
  // prefetch advice for the granule(s) it streams.
  qclab::QCircuit<T> circuit(8);
  circuit.push_back(qclab::qgates::Hadamard<T>(5));
  circuit.push_back(qclab::qgates::CX<T>(5, 6));
  circuit.push_back(qclab::qgates::Hadamard<T>(7));
  circuit.push_back(qclab::qgates::CX<T>(6, 7));

  qclab::SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.maxQubits = 2;
  options.fusionOptions.blockQubits = 3;
  options.stateTier = forced(StateTier::kMmap);

  auto& metrics = qclab::obs::metrics();
  metrics.reset();
  const auto simulation = circuit.simulate("00000000", options);
  if (simulation.stateBuffer(0).tier() != StateTier::kMmap) {
    GTEST_SKIP() << "mmap tier unavailable";
  }
  EXPECT_GE(metrics.prefetchIssued(), 1u);
  EXPECT_GE(metrics.gateApplications(qclab::sim::KernelPath::kBlocked), 1u);
  EXPECT_GT(metrics.tierMappedBytes(StateTier::kMmap), 0u);
}

TEST(StateBuffer, TierGaugesTrackLiveAllocations) {
  if (!qclab::obs::kEnabled) GTEST_SKIP() << "obs disabled in this build";
  TierEnvGuard guard;
  auto& metrics = qclab::obs::metrics();
  const std::uint64_t mappedBefore =
      metrics.tierMappedBytes(StateTier::kMmap);
  const std::uint64_t heapBefore = metrics.tierResidentBytes(StateTier::kHeap);
  {
    const auto heap =
        StateBuffer<double>::zeros(1 << 10, forced(StateTier::kHeap));
    EXPECT_EQ(metrics.tierResidentBytes(StateTier::kHeap),
              heapBefore + (std::uint64_t{1} << 10) * sizeof(std::complex<double>));
    const auto mapped =
        StateBuffer<double>::zeros(1 << 10, forced(StateTier::kMmap));
    if (mapped.tier() == StateTier::kMmap) {
      EXPECT_EQ(metrics.tierMappedBytes(StateTier::kMmap),
                mappedBefore +
                    (std::uint64_t{1} << 10) * sizeof(std::complex<double>));
    }
  }
  // Gauges return to their baseline when the buffers die.
  EXPECT_EQ(metrics.tierMappedBytes(StateTier::kMmap), mappedBefore);
  EXPECT_EQ(metrics.tierResidentBytes(StateTier::kHeap), heapBefore);
}

/// \file test_gates2.cpp
/// \brief Unit tests for the non-controlled two-qubit gates: SWAP, iSWAP,
/// RXX, RYY, RZZ.

#include <gtest/gtest.h>

#include <sstream>

#include "qclab/qgates/qgates.hpp"
#include "test_helpers.hpp"

namespace qclab::qgates {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

TEST(Swap, MatrixAndInvolution) {
  const auto swap = SWAP<double>(0, 1).matrix();
  const M expected{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
  qclab::test::expectMatrixNear(swap, expected);
  qclab::test::expectMatrixNear(swap * swap, M::identity(4));
}

TEST(Swap, QubitsSortedAndValidated) {
  const SWAP<double> swap(3, 1);
  EXPECT_EQ(swap.qubit0(), 1);
  EXPECT_EQ(swap.qubit1(), 3);
  EXPECT_EQ(swap.qubits(), (std::vector<int>{1, 3}));
  EXPECT_THROW(SWAP<double>(2, 2), InvalidArgumentError);
  EXPECT_THROW(SWAP<double>(-1, 2), InvalidArgumentError);
}

TEST(Swap, EqualsThreeCnots) {
  const auto cx01 = CX<double>(0, 1).matrix();
  const auto cx10 = CX<double>(1, 0).matrix();
  qclab::test::expectMatrixNear(SWAP<double>(0, 1).matrix(),
                                cx01 * cx10 * cx01);
}

TEST(ISwap, MatrixAndInverse) {
  const auto gate = iSWAP<double>(0, 1);
  const auto m = gate.matrix();
  EXPECT_EQ(m(1, 2), C(0, 1));
  EXPECT_EQ(m(2, 1), C(0, 1));
  EXPECT_TRUE(m.isUnitary(1e-14));
  const auto inverse = gate.inverse();
  qclab::test::expectMatrixNear(inverse->matrix() * m, M::identity(4));
  // (iSWAP)^4 == I.
  qclab::test::expectMatrixNear(m * m * m * m, M::identity(4));
}

TEST(TwoQubitRotations, MatchExponentialDefinition) {
  // exp(-i theta/2 P (x) P) = cos(theta/2) I - i sin(theta/2) P (x) P.
  const double theta = 0.77;
  const C cosTerm(std::cos(theta / 2));
  const C sinTerm(0, -std::sin(theta / 2));

  const auto checkAgainstPauli = [&](const M& gateMatrix, const M& pauli) {
    const auto pp = dense::kron(pauli, pauli);
    auto expected = M::identity(4) * cosTerm + pp * sinTerm;
    qclab::test::expectMatrixNear(gateMatrix, expected);
  };
  checkAgainstPauli(RotationXX<double>(0, 1, theta).matrix(),
                    dense::pauliX<double>());
  checkAgainstPauli(RotationYY<double>(0, 1, theta).matrix(),
                    dense::pauliY<double>());
  checkAgainstPauli(RotationZZ<double>(0, 1, theta).matrix(),
                    dense::pauliZ<double>());
}

TEST(TwoQubitRotations, RzzIsDiagonal) {
  EXPECT_TRUE(RotationZZ<double>(0, 1, 0.5).isDiagonal());
  EXPECT_FALSE(RotationXX<double>(0, 1, 0.5).isDiagonal());
  EXPECT_FALSE(RotationYY<double>(0, 1, 0.5).isDiagonal());
}

TEST(TwoQubitRotations, FusionAndInverse) {
  RotationZZ<double> gate(0, 1, 0.5);
  gate.fuse(QRotation<double>(0.3));
  EXPECT_NEAR(gate.theta(), 0.8, 1e-14);
  const auto inverse = gate.inverse();
  qclab::test::expectMatrixNear(inverse->matrix() * gate.matrix(),
                                M::identity(4));
}

TEST(TwoQubitGates, QasmOutput) {
  std::ostringstream stream;
  SWAP<double>(0, 2).toQASM(stream, 1);
  EXPECT_EQ(stream.str(), "swap q[1], q[3];\n");
  std::ostringstream stream2;
  RotationZZ<double>(0, 1, 0.5).toQASM(stream2);
  EXPECT_EQ(stream2.str().substr(0, 4), "rzz(");
}

TEST(TwoQubitGates, SwapDrawsAsCrosses) {
  std::vector<io::DrawItem> items;
  SWAP<double>(0, 2).appendDrawItems(items);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].kind, io::DrawItem::Kind::kSwap);
  EXPECT_EQ(items[0].swapQubits, (std::vector<int>{0, 2}));
}

class TwoQubitRotationSweep : public ::testing::TestWithParam<double> {};

TEST_P(TwoQubitRotationSweep, UnitaryAndCompose) {
  const double theta = GetParam();
  const auto a = RotationXX<double>(0, 1, theta);
  const auto b = RotationXX<double>(0, 1, 0.3);
  EXPECT_TRUE(a.matrix().isUnitary(1e-14));
  // Same-axis rotations commute and compose by angle addition.
  qclab::test::expectMatrixNear(
      a.matrix() * b.matrix(),
      RotationXX<double>(0, 1, theta + 0.3).matrix());
}

INSTANTIATE_TEST_SUITE_P(Angles, TwoQubitRotationSweep,
                         ::testing::Values(-M_PI, -0.7, 0.0, 0.4, M_PI_2,
                                           M_PI, 2.0));

}  // namespace
}  // namespace qclab::qgates

/// \file test_omp.cpp
/// \brief Thread-count invariance: the OpenMP-parallel kernels must produce
/// bit-compatible results regardless of OMP_NUM_THREADS (the loops carry no
/// cross-iteration dependencies; only the reduction may reassociate).
/// Also covers the diagonal-K fast path against the generic applyK.

#include <gtest/gtest.h>

#ifdef QCLAB_HAS_OPENMP
#include <omp.h>
#endif

#include "test_helpers.hpp"

namespace qclab::sim {
namespace {

using C = std::complex<double>;

class ThreadSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
#ifdef QCLAB_HAS_OPENMP
    previousThreads_ = omp_get_max_threads();
    omp_set_num_threads(GetParam());
#endif
  }
  void TearDown() override {
#ifdef QCLAB_HAS_OPENMP
    omp_set_num_threads(previousThreads_);
#endif
  }
  int previousThreads_ = 1;
};

TEST_P(ThreadSweep, KernelsMatchSingleThreadReference) {
  // Reference computed with whatever thread count the suite started with
  // would be fragile; instead compare against the dense circuit matrix.
  const int n = 13;  // above the kOmpThreshold so the parallel path runs
  random::Rng rng(1);
  auto state = qclab::test::randomState<double>(n, rng);
  const auto reference = state;

  const auto u = qclab::test::randomUnitary1<double>(rng);
  apply1(state, n, 5, u);
  // Undo with the inverse: identical amplitudes required (within rounding).
  apply1(state, n, 5, u.dagger());
  qclab::test::expectStateNear(state, reference, 1e-13);

  applySwap(state, n, 0, n - 1);
  applySwap(state, n, 0, n - 1);
  qclab::test::expectStateNear(state, reference, 1e-13);

  applyControlled1(state, n, {2, 7}, {1, 0}, 9, u);
  applyControlled1(state, n, {2, 7}, {1, 0}, 9, u.dagger());
  qclab::test::expectStateNear(state, reference, 1e-13);

  const double p0 = measureProbability0(state, n, 4);
  EXPECT_GE(p0, 0.0);
  EXPECT_LE(p0, 1.0 + 1e-12);
  collapse(state, n, 4, p0 >= 0.5 ? 0 : 1, p0 >= 0.5 ? p0 : 1.0 - p0);
  EXPECT_NEAR(dense::norm2(state), 1.0, 1e-12);
}

TEST_P(ThreadSweep, SimulationResultsThreadInvariant) {
  auto circuit = qclab::test::randomCircuit<double>(12, 20, 3);
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate(std::string(12, '0'));
  double total = 0.0;
  for (double p : simulation.probabilities()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-10);
  for (const auto& branch : simulation.branches()) {
    EXPECT_NEAR(dense::norm2(branch.state), 1.0, 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1, 2, 4));

TEST(DiagonalK, MatchesGenericApply) {
  const int n = 6;
  random::Rng rng(2);
  for (const auto& qubits :
       {std::vector<int>{0, 3}, {1, 2, 5}, {0, 1, 2, 3}}) {
    // Random diagonal unitary on the subset.
    const std::size_t dim = std::size_t{1} << qubits.size();
    std::vector<C> diagonal(dim);
    dense::Matrix<double> u(dim, dim);
    for (std::size_t i = 0; i < dim; ++i) {
      diagonal[i] = std::polar(1.0, rng.uniform(-3.0, 3.0));
      u(i, i) = diagonal[i];
    }
    auto stateA = qclab::test::randomState<double>(n, rng);
    auto stateB = stateA;
    applyDiagonalK(stateA, n, qubits, diagonal);
    applyK(stateB, n, qubits, u);
    qclab::test::expectStateNear(stateA, stateB, 1e-13);
  }
}

TEST(DiagonalK, KernelBackendUsesItForRzz) {
  // Behavioural check through the backend: RZZ on a non-adjacent pair.
  QCircuit<double> circuit(5);
  circuit.push_back(qgates::RotationZZ<double>(1, 4, 0.77));
  random::Rng rng(3);
  const auto state = qclab::test::randomState<double>(5, rng);
  const KernelBackend<double> kernel;
  const SparseKronBackend<double> sparse;
  qclab::test::expectStateNear(circuit.simulate(state, kernel).state(0),
                               circuit.simulate(state, sparse).state(0),
                               1e-12);
}

TEST(DiagonalK, Validation) {
  std::vector<C> state(8);
  EXPECT_THROW(applyDiagonalK(state, 3, {0, 1}, std::vector<C>(2)),
               InvalidArgumentError);
  EXPECT_THROW(applyDiagonalK(state, 3, {5}, std::vector<C>(2)),
               QubitRangeError);
}

}  // namespace
}  // namespace qclab::sim

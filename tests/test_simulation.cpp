/// \file test_simulation.cpp
/// \brief Unit tests for the branching Simulation object: branch
/// bookkeeping, counts / countsMap sampling, reduced states, resets, and
/// basis measurements.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using C = std::complex<double>;
using namespace qclab::qgates;

TEST(Simulation, NoMeasurementSingleBranch) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  const auto simulation = circuit.simulate("00");
  EXPECT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0), "");
  EXPECT_NEAR(simulation.probability(0), 1.0, 1e-15);
  EXPECT_EQ(simulation.nbMeasurements(), 0u);
  EXPECT_EQ(simulation.counts(100), std::vector<std::uint64_t>{100});
}

TEST(Simulation, DeterministicMeasurementSingleBranch) {
  QCircuit<double> circuit(1);
  circuit.push_back(PauliX<double>(0));
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate("0");
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0), "1");
  EXPECT_NEAR(simulation.probability(0), 1.0, 1e-14);
}

TEST(Simulation, BranchOrderZeroFirst) {
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate("0");
  ASSERT_EQ(simulation.nbBranches(), 2u);
  EXPECT_EQ(simulation.result(0), "0");
  EXPECT_EQ(simulation.result(1), "1");
}

TEST(Simulation, ProbabilitiesSumToOne) {
  auto circuit = qclab::test::randomCircuit<double>(3, 15, 3);
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  circuit.push_back(Measurement<double>(2));
  const auto simulation = circuit.simulate("000");
  double total = 0.0;
  for (double p : simulation.probabilities()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-10);
  for (const auto& state : simulation.states()) {
    EXPECT_NEAR(dense::norm2(state), 1.0, 1e-12);
  }
}

TEST(Simulation, RepeatedMeasurementIsIdempotent) {
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate("0");
  // Second measurement is deterministic on each branch: no further split.
  ASSERT_EQ(simulation.nbBranches(), 2u);
  EXPECT_EQ(simulation.result(0), "00");
  EXPECT_EQ(simulation.result(1), "11");
  EXPECT_NEAR(simulation.probability(0), 0.5, 1e-14);
}

TEST(Simulation, MidCircuitMeasurementThenGates) {
  // Measure, then entangle downstream: branches evolve independently.
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(CX<double>(0, 1));
  const auto simulation = circuit.simulate("00");
  ASSERT_EQ(simulation.nbBranches(), 2u);
  // Branch '0': state |00>; branch '1': state |11>.
  qclab::test::expectStateNear(simulation.state(0), basisState<double>("00"));
  qclab::test::expectStateNear(simulation.state(1), basisState<double>("11"));
}

TEST(Simulation, XBasisMeasurementOfPlusStateIsDeterministic) {
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));         // |+>
  circuit.push_back(Measurement<double>(0, 'x'));  // deterministic in X
  const auto simulation = circuit.simulate("0");
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0), "0");
  // Post-measurement state is |+> again (basis change reverted).
  const double h = 1.0 / std::sqrt(2.0);
  qclab::test::expectStateNear(simulation.state(0),
                               std::vector<C>{C(h), C(h)});
}

TEST(Simulation, YBasisMeasurementOfEigenstate) {
  // (1, i)/sqrt(2) is the +1 eigenstate of Y.
  const double h = 1.0 / std::sqrt(2.0);
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0, 'y'));
  const auto simulation = circuit.simulate(std::vector<C>{C(h), C(0, h)});
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0), "0");
}

TEST(Simulation, CustomBasisMeasurement) {
  // Custom basis = X basis given explicitly as a matrix.
  const double h = 1.0 / std::sqrt(2.0);
  dense::Matrix<double> xBasis{{h, h}, {h, -h}};
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0, xBasis));
  const auto plus = std::vector<C>{C(h), C(h)};
  const auto simulation = circuit.simulate(plus);
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0), "0");
}

TEST(Simulation, CountsAreDeterministicPerSeed) {
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate("0");
  const auto a = simulation.counts(1000, 42);
  const auto b = simulation.counts(1000, 42);
  EXPECT_EQ(a, b);
  const auto c = simulation.counts(1000, 43);
  EXPECT_NE(a, c);
}

TEST(Simulation, CountsSumAndDistribution) {
  QCircuit<double> circuit(1);
  circuit.push_back(RotationY<double>(0, 2.0 * std::acos(std::sqrt(0.8))));
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate("0");
  // P(0) = 0.8.
  const auto counts = simulation.counts(100000, 7);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0] + counts[1], 100000u);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 100000.0, 0.8, 0.01);
}

TEST(Simulation, CountsIncludeImpossibleOutcomes) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  const auto simulation = circuit.simulate("00");
  const auto counts = simulation.counts(1000, 1);
  ASSERT_EQ(counts.size(), 4u);  // all 2^2 outcomes listed
  EXPECT_EQ(counts[1], 0u);      // '01' impossible
  EXPECT_EQ(counts[2], 0u);      // '10' impossible
  EXPECT_EQ(counts[0] + counts[3], 1000u);
}

TEST(Simulation, CountsMapOnlyObservedOutcomes) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  const auto simulation = circuit.simulate("00");
  const auto counts = simulation.countsMap(1000, 1);
  EXPECT_EQ(counts.size(), 2u);
  EXPECT_TRUE(counts.count("00"));
  EXPECT_TRUE(counts.count("11"));
  std::uint64_t total = 0;
  for (const auto& [result, count] : counts) total += count;
  EXPECT_EQ(total, 1000u);
}

TEST(Simulation, ResetProducesZeroOnAllBranches) {
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Reset<double>(0));
  const auto simulation = circuit.simulate("0");
  // Reset records no outcome; each branch holds |0>.
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    EXPECT_EQ(simulation.result(i), "");
    qclab::test::expectStateNear(simulation.state(i),
                                 basisState<double>("0"));
  }
  double total = 0.0;
  for (double p : simulation.probabilities()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-14);
}

TEST(Simulation, ResetEnablesQubitReuse) {
  // Entangle, reset one qubit, reuse it: measuring it afterwards gives 0.
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Reset<double>(0));
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate("00");
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    EXPECT_EQ(simulation.result(i), "0");
  }
}

TEST(Simulation, ReducedStatesAfterPartialEndMeasurement) {
  // Measure only qubit 0 of a product state: reduced state of qubit 1
  // survives.
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(1));
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate("00");
  const auto reduced = simulation.reducedStates();
  ASSERT_EQ(reduced.size(), 1u);
  const double h = 1.0 / std::sqrt(2.0);
  qclab::test::expectStateNear(reduced[0], std::vector<C>{C(h), C(h)});
}

TEST(Simulation, ReducedStatesAllMeasured) {
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate("0");
  const auto reduced = simulation.reducedStates();
  ASSERT_EQ(reduced.size(), 1u);
  ASSERT_EQ(reduced[0].size(), 1u);  // scalar
  EXPECT_NEAR(std::abs(reduced[0][0]), 1.0, 1e-14);
}

TEST(Simulation, BranchCountGrowsGeometrically) {
  QCircuit<double> circuit(4);
  for (int q = 0; q < 4; ++q) circuit.push_back(Hadamard<double>(q));
  for (int q = 0; q < 4; ++q) circuit.push_back(Measurement<double>(q));
  const auto simulation = circuit.simulate("0000");
  EXPECT_EQ(simulation.nbBranches(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(simulation.probability(i), 1.0 / 16.0, 1e-12);
  }
}

class ShotSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShotSweep, CountsAlwaysSumToShots) {
  const auto shots = GetParam();
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Hadamard<double>(1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  const auto simulation = circuit.simulate("00");
  const auto counts = simulation.counts(shots, 5);
  std::uint64_t total = 0;
  for (auto count : counts) total += count;
  EXPECT_EQ(total, shots);
}

INSTANTIATE_TEST_SUITE_P(Shots, ShotSweep,
                         ::testing::Values(std::uint64_t{0},
                                           std::uint64_t{1},
                                           std::uint64_t{17},
                                           std::uint64_t{1000},
                                           std::uint64_t{100000}));

}  // namespace
}  // namespace qclab

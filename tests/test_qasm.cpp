/// \file test_qasm.cpp
/// \brief Unit tests for OpenQASM 2.0 export (paper §4) and the importer,
/// including full round trips.

#include <gtest/gtest.h>

#include "qclab/io/qasm.hpp"
#include "test_helpers.hpp"

namespace qclab::io {
namespace {

using namespace qclab::qgates;

TEST(QasmExport, PaperCircuitOutput) {
  // The paper §4 shows the exact QASM for circuit (1).
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  EXPECT_EQ(circuit.toQASM(),
            "OPENQASM 2.0;\n"
            "include \"qelib1.inc\";\n"
            "qreg q[2];\n"
            "creg c[2];\n"
            "h q[0];\n"
            "cx q[0], q[1];\n"
            "measure q[0] -> c[0];\n"
            "measure q[1] -> c[1];\n");
}

TEST(QasmLexer, TokenKinds) {
  const auto tokens = tokenizeQasm("h q[0]; // comment\nrx(1.5e-2) q[1];");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, Token::Type::kIdentifier);
  EXPECT_EQ(tokens[0].text, "h");
  EXPECT_EQ(tokens.back().type, Token::Type::kEnd);
  // The exponent literal survives as one number.
  bool found = false;
  for (const auto& token : tokens) {
    if (token.type == Token::Type::kNumber && token.text == "1.5e-2") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(QasmLexer, LineTracking) {
  const auto tokens = tokenizeQasm("a\nb\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
}

TEST(QasmLexer, RejectsGarbage) {
  EXPECT_THROW(tokenizeQasm("h q[0] @"), QasmParseError);
  EXPECT_THROW(tokenizeQasm("include \"unterminated"), QasmParseError);
}

TEST(QasmParse, MinimalProgram) {
  const auto circuit = parseQasm<double>(
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n"
      "h q[0];\ncx q[0], q[1];\n");
  EXPECT_EQ(circuit.nbQubits(), 2);
  EXPECT_EQ(circuit.nbObjects(), 2u);
}

TEST(QasmParse, AngleExpressions) {
  const auto circuit = parseQasm<double>(
      "OPENQASM 2.0;\nqreg q[1];\n"
      "rx(pi/2) q[0];\nry(-pi) q[0];\nrz(3*pi/4) q[0];\n"
      "p(0.25) q[0];\nu3(pi/2, -(pi/4), 1.5e-1+2) q[0];\n");
  ASSERT_EQ(circuit.nbObjects(), 5u);
  const auto& rx = static_cast<const RotationX<double>&>(circuit.objectAt(0));
  EXPECT_NEAR(rx.theta(), M_PI_2, 1e-12);
  const auto& ry = static_cast<const RotationY<double>&>(circuit.objectAt(1));
  EXPECT_NEAR(ry.theta(), -M_PI, 1e-12);
  const auto& rz = static_cast<const RotationZ<double>&>(circuit.objectAt(2));
  EXPECT_NEAR(rz.theta(), 3.0 * M_PI / 4.0, 1e-12);
  const auto& u = static_cast<const U3<double>&>(circuit.objectAt(4));
  EXPECT_NEAR(u.lambda(), 2.15, 1e-12);
}

TEST(QasmParse, MeasureResetBarrier) {
  const auto circuit = parseQasm<double>(
      "OPENQASM 2.0;\nqreg q[3];\ncreg c[3];\n"
      "measure q[1] -> c[1];\nreset q[0];\nbarrier q[0], q[2];\n");
  ASSERT_EQ(circuit.nbObjects(), 3u);
  EXPECT_EQ(circuit.objectAt(0).objectType(), ObjectType::kMeasurement);
  EXPECT_EQ(circuit.objectAt(1).objectType(), ObjectType::kReset);
  EXPECT_EQ(circuit.objectAt(2).objectType(), ObjectType::kBarrier);
}

TEST(QasmParse, Errors) {
  EXPECT_THROW(parseQasm<double>("qreg q[2];"), QasmParseError);
  EXPECT_THROW(parseQasm<double>("OPENQASM 3.0;\nqreg q[2];"),
               QasmParseError);
  EXPECT_THROW(parseQasm<double>("OPENQASM 2.0;\nh q[0];"), QasmParseError);
  EXPECT_THROW(parseQasm<double>("OPENQASM 2.0;\nqreg q[1];\nh q[5];"),
               QasmParseError);
  EXPECT_THROW(parseQasm<double>("OPENQASM 2.0;\nqreg q[1];\nfoo q[0];"),
               QasmParseError);
  EXPECT_THROW(parseQasm<double>("OPENQASM 2.0;\nqreg q[2];\ncx q[0];"),
               QasmParseError);
  EXPECT_THROW(parseQasm<double>("OPENQASM 2.0;\nqreg q[1];\nrx() q[0];"),
               QasmParseError);
  EXPECT_THROW(parseQasm<double>("OPENQASM 2.0;"), QasmParseError);
  EXPECT_THROW(
      parseQasm<double>("OPENQASM 2.0;\nqreg q[1];\nrx(1/0) q[0];"),
      QasmParseError);
}

TEST(QasmParse, ErrorCarriesLineNumber) {
  try {
    parseQasm<double>("OPENQASM 2.0;\nqreg q[1];\nfoo q[0];");
    FAIL() << "expected QasmParseError";
  } catch (const QasmParseError& error) {
    EXPECT_EQ(error.line(), 3);
  }
}

/// Round trip: export every representable gate, reparse, compare unitaries.
TEST(QasmRoundTrip, FullGateCatalog) {
  QCircuit<double> circuit(4);
  circuit.push_back(Identity<double>(0));
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(PauliX<double>(1));
  circuit.push_back(PauliY<double>(2));
  circuit.push_back(PauliZ<double>(3));
  circuit.push_back(SGate<double>(0));
  circuit.push_back(SdgGate<double>(1));
  circuit.push_back(TGate<double>(2));
  circuit.push_back(TdgGate<double>(3));
  circuit.push_back(SX<double>(0));
  circuit.push_back(SXdg<double>(1));
  circuit.push_back(Phase<double>(2, 0.3));
  circuit.push_back(RotationX<double>(3, -0.7));
  circuit.push_back(RotationY<double>(0, 1.9));
  circuit.push_back(RotationZ<double>(1, 0.1));
  circuit.push_back(U2<double>(2, 0.4, -0.6));
  circuit.push_back(U3<double>(3, 1.0, 0.2, -0.9));
  circuit.push_back(CX<double>(0, 2));
  circuit.push_back(CY<double>(1, 3));
  circuit.push_back(CZ<double>(2, 0));
  circuit.push_back(CH<double>(3, 1));
  circuit.push_back(CPhase<double>(0, 3, 0.8));
  circuit.push_back(CRotationX<double>(1, 2, -1.2));
  circuit.push_back(CRotationY<double>(2, 3, 0.5));
  circuit.push_back(CRotationZ<double>(3, 0, 2.2));
  circuit.push_back(SWAP<double>(0, 1));
  circuit.push_back(iSWAP<double>(2, 3));
  circuit.push_back(RotationXX<double>(0, 3, 0.4));
  circuit.push_back(RotationYY<double>(1, 2, -0.3));
  circuit.push_back(RotationZZ<double>(0, 1, 1.1));
  circuit.push_back(Toffoli<double>(0, 1, 2));
  circuit.push_back(MCX<double>({0, 1, 2}, 3));

  const auto reparsed = parseQasm<double>(circuit.toQASM());
  EXPECT_EQ(reparsed.nbQubits(), 4);
  qclab::test::expectMatrixNear(reparsed.matrix(), circuit.matrix(), 1e-11);
}

TEST(QasmRoundTrip, ZeroControlStatesPreserveUnitary) {
  QCircuit<double> circuit(3);
  circuit.push_back(CX<double>(0, 1, 0));
  circuit.push_back(MCX<double>({0, 2}, 1, {0, 1}));
  const auto reparsed = parseQasm<double>(circuit.toQASM());
  qclab::test::expectMatrixNear(reparsed.matrix(), circuit.matrix(), 1e-12);
}

TEST(QasmRoundTrip, NestedCircuitsFlattenInQasm) {
  QCircuit<double> sub(2, 1);
  sub.push_back(Hadamard<double>(0));
  sub.push_back(CX<double>(0, 1));
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(QCircuit<double>(sub));
  const auto reparsed = parseQasm<double>(circuit.toQASM());
  qclab::test::expectMatrixNear(reparsed.matrix(), circuit.matrix(), 1e-12);
}

TEST(QasmRoundTrip, MeasurementBasesViaBasisChange) {
  // X/Y measurements export as basis change + Z measurement; reparsing and
  // simulating yields the same outcome probabilities.
  const double h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<double>> v = {{h, 0.0}, {0.0, h}};
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0, 'y'));
  const auto reparsed = parseQasm<double>(circuit.toQASM());
  const auto a = circuit.simulate(v);
  const auto b = reparsed.simulate(v);
  ASSERT_EQ(a.nbBranches(), b.nbBranches());
  for (std::size_t i = 0; i < a.nbBranches(); ++i) {
    EXPECT_EQ(a.result(i), b.result(i));
    EXPECT_NEAR(a.probability(i), b.probability(i), 1e-12);
  }
}

class QasmRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QasmRandomRoundTrip, RandomCircuitsSurviveUpToPhase) {
  const auto circuit =
      qclab::test::randomCircuit<double>(4, 30, GetParam());
  const auto reparsed = parseQasm<double>(circuit.toQASM());
  // MatrixGate1 exports via u3, which drops a global phase -> compare
  // action on a random state up to phase.
  random::Rng rng(GetParam() + 77);
  const auto state = qclab::test::randomState<double>(4, rng);
  const auto a = circuit.simulate(state).state(0);
  const auto b = reparsed.simulate(state).state(0);
  EXPECT_TRUE(dense::equalUpToPhase(a, b, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QasmRandomRoundTrip, ::testing::Range(1, 7));

}  // namespace
}  // namespace qclab::io

/// \file test_trajectory_vs_density.cpp
/// \brief Differential tests: trajectory-averaged outcome distributions
/// must converge to the density-matrix diagonal for every KrausChannel
/// factory on 2–5 qubit circuits (seeded, fixed trajectory count, so the
/// runs are reproducible and the statistical tolerance is safe).

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"
#include "test_helpers.hpp"

namespace qclab {
namespace {

using noise::DensityMatrix;
using noise::KrausChannel;
using noise::NoiseModel;
using noise::TrajectoryOptions;
using noise::TrajectorySimulator;

constexpr std::size_t kTrajectories = 3000;
// Per-trajectory marginals lie in [0, 1], so the standard error of the
// mean is at most 0.5 / sqrt(N) ~ 0.009; 0.05 is > 5 sigma.
constexpr double kStatTol = 0.05;

std::vector<int> allQubits(int n) {
  std::vector<int> qubits(static_cast<std::size_t>(n));
  std::iota(qubits.begin(), qubits.end(), 0);
  return qubits;
}

/// Runs `circuit` under `model` through both simulators and compares the
/// trajectory-averaged distribution with the density-matrix diagonal.
void expectTrajectoryMatchesDensity(const QCircuit<double>& circuit,
                                    const NoiseModel<double>& model,
                                    std::uint64_t seed) {
  const int n = circuit.nbQubits();
  const std::string zeros(static_cast<std::size_t>(n), '0');

  const DensityMatrix<double> rho =
      noise::simulateDensity(circuit, zeros, model);
  const std::vector<double> expected = rho.probabilities(allQubits(n));

  TrajectoryOptions options;
  options.seed = seed;
  options.nbTrajectories = kTrajectories;
  options.marginalQubits = allQubits(n);
  const TrajectorySimulator<double> simulator(circuit, model, options);
  const auto result = simulator.run(zeros);
  const std::vector<double>& actual = result.probabilities();

  ASSERT_EQ(actual.size(), expected.size());
  double totalActual = 0.0;
  double totalExpected = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], kStatTol)
        << "outcome index " << i << " of " << actual.size();
    totalActual += actual[i];
    totalExpected += expected[i];
  }
  EXPECT_NEAR(totalActual, 1.0, 1e-9);
  EXPECT_NEAR(totalExpected, 1.0, 1e-9);
}

/// An entangling circuit with a mid-circuit measurement so that gate noise,
/// measurement noise, and collapse all participate.
QCircuit<double> ghzWithMeasurement(int n) {
  QCircuit<double> circuit(n);
  circuit.push_back(qgates::Hadamard<double>(0));
  for (int q = 1; q < n; ++q) {
    circuit.push_back(qgates::CX<double>(q - 1, q));
  }
  circuit.push_back(Measurement<double>(0));
  return circuit;
}

QCircuit<double> excitedCircuit(int n) {
  QCircuit<double> circuit(n);
  for (int q = 0; q < n; ++q) {
    circuit.push_back(qgates::PauliX<double>(q));
  }
  circuit.push_back(qgates::Hadamard<double>(n - 1));
  return circuit;
}

class TrajectoryVsDensity : public ::testing::TestWithParam<int> {};

TEST_P(TrajectoryVsDensity, DepolarizingGateNoise) {
  const int n = GetParam();
  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::depolarizing(0.1);
  expectTrajectoryMatchesDensity(ghzWithMeasurement(n), model, 100 + n);
}

TEST_P(TrajectoryVsDensity, BitFlipGateNoise) {
  const int n = GetParam();
  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::bitFlip(0.15);
  expectTrajectoryMatchesDensity(ghzWithMeasurement(n), model, 200 + n);
}

TEST_P(TrajectoryVsDensity, PhaseFlipGateNoise) {
  const int n = GetParam();
  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::phaseFlip(0.2);
  expectTrajectoryMatchesDensity(ghzWithMeasurement(n), model, 300 + n);
}

TEST_P(TrajectoryVsDensity, BitPhaseFlipGateNoise) {
  const int n = GetParam();
  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::bitPhaseFlip(0.1);
  expectTrajectoryMatchesDensity(ghzWithMeasurement(n), model, 400 + n);
}

TEST_P(TrajectoryVsDensity, AmplitudeDampingGateNoise) {
  const int n = GetParam();
  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::amplitudeDamping(0.25);
  expectTrajectoryMatchesDensity(excitedCircuit(n), model, 500 + n);
}

TEST_P(TrajectoryVsDensity, PhaseDampingGateNoise) {
  const int n = GetParam();
  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::phaseDamping(0.3);
  expectTrajectoryMatchesDensity(ghzWithMeasurement(n), model, 600 + n);
}

TEST_P(TrajectoryVsDensity, ReadoutMeasurementNoise) {
  const int n = GetParam();
  NoiseModel<double> model;
  model.measurementNoise = KrausChannel<double>::readout(0.1, 0.2);
  expectTrajectoryMatchesDensity(ghzWithMeasurement(n), model, 700 + n);
}

TEST_P(TrajectoryVsDensity, CombinedGateAndReadoutNoise) {
  const int n = GetParam();
  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::depolarizing(0.05);
  model.measurementNoise = KrausChannel<double>::readout(0.05);
  expectTrajectoryMatchesDensity(ghzWithMeasurement(n), model, 800 + n);
}

TEST_P(TrajectoryVsDensity, RandomCircuitUnderDepolarizing) {
  const int n = GetParam();
  const auto circuit =
      test::randomCircuit<double>(n, 8, 900 + static_cast<std::uint64_t>(n));
  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::depolarizing(0.08);
  expectTrajectoryMatchesDensity(circuit, model, 900 + n);
}

INSTANTIATE_TEST_SUITE_P(TwoToFiveQubits, TrajectoryVsDensity,
                         ::testing::Values(2, 3, 4, 5));

// ---- recorded-outcome agreement ---------------------------------------

TEST(TrajectoryVsDensityOutcomes, RepetitionCodeBitFlipStatistics) {
  // 3-qubit repetition code under bit-flip noise: encode |+>, let the
  // channel act on every gate, decode, and compare the data-qubit
  // marginal between the two simulators.
  QCircuit<double> circuit(3);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(qgates::CX<double>(0, 1));
  circuit.push_back(qgates::CX<double>(0, 2));
  circuit.push_back(qgates::CX<double>(0, 1));
  circuit.push_back(qgates::CX<double>(0, 2));
  circuit.push_back(qgates::Toffoli<double>(1, 2, 0));

  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::bitFlip(0.05);

  expectTrajectoryMatchesDensity(circuit, model, 42);
}

TEST(TrajectoryVsDensityOutcomes, XBasisReadoutNoiseMatchesDensity) {
  // Regression companion of the measurementNoise ordering fix: both
  // simulators must report the same corrupted X-basis distribution.  The
  // trailing H maps the post-measurement X eigenstates onto |0>/|1>, so
  // the density diagonal exposes the recorded distribution.
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0, 'x'));
  circuit.push_back(qgates::Hadamard<double>(0));

  NoiseModel<double> model;
  model.measurementNoise = KrausChannel<double>::bitFlip(0.2);

  const DensityMatrix<double> rho =
      noise::simulateDensity(circuit, "0", model);
  const auto expected = rho.probabilities({0});
  ASSERT_EQ(expected.size(), 2u);
  EXPECT_NEAR(expected[0], 0.8, 1e-12);
  EXPECT_NEAR(expected[1], 0.2, 1e-12);

  TrajectoryOptions options;
  options.seed = 77;
  options.nbTrajectories = kTrajectories;
  const TrajectorySimulator<double> simulator(circuit, model, options);
  const auto counts = simulator.run("0").counts();
  EXPECT_NEAR(static_cast<double>(counts[1]) /
                  static_cast<double>(kTrajectories),
              expected[1], kStatTol);
}

TEST(TrajectoryVsDensityOutcomes, MeasuredCountsMatchDensityMarginal) {
  // Terminal measurements on every qubit: the empirical distribution of
  // recorded outcome strings must match the density-matrix diagonal.
  const int n = 3;
  QCircuit<double> circuit = ghzWithMeasurement(n);
  for (int q = 1; q < n; ++q) {
    circuit.push_back(Measurement<double>(q));
  }
  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::bitFlip(0.1);
  model.measurementNoise = KrausChannel<double>::readout(0.05);

  const DensityMatrix<double> rho =
      noise::simulateDensity(circuit, "000", model);
  const auto expected = rho.probabilities(allQubits(n));

  TrajectoryOptions options;
  options.seed = 55;
  options.nbTrajectories = kTrajectories;
  const TrajectorySimulator<double> simulator(circuit, model, options);
  const auto result = simulator.run("000");
  // Measurement order is qubit 0 (mid-circuit), then 0 is not re-measured:
  // outcomes are [m0, m1, m2] and index the same MSB-first distribution.
  const auto counts = result.counts();
  ASSERT_EQ(counts.size(), expected.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) /
                    static_cast<double>(kTrajectories),
                expected[i], kStatTol)
        << "outcome index " << i;
  }
}

}  // namespace
}  // namespace qclab

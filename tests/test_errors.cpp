/// \file test_errors.cpp
/// \brief Unit tests for the error hierarchy and checking helpers.

#include <gtest/gtest.h>

#include "qclab/util/errors.hpp"
#include "qclab/version.hpp"

namespace qclab {
namespace {

TEST(Errors, Hierarchy) {
  // Every library error derives from qclab::Error.
  EXPECT_THROW(throw QubitRangeError("x"), Error);
  EXPECT_THROW(throw InvalidArgumentError("x"), Error);
  EXPECT_THROW(throw QasmParseError("x", 1), Error);
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

TEST(Errors, CheckQubit) {
  EXPECT_NO_THROW(util::checkQubit(0, 1));
  EXPECT_NO_THROW(util::checkQubit(4, 5));
  EXPECT_THROW(util::checkQubit(-1, 5), QubitRangeError);
  EXPECT_THROW(util::checkQubit(5, 5), QubitRangeError);
  try {
    util::checkQubit(7, 3);
    FAIL();
  } catch (const QubitRangeError& error) {
    EXPECT_NE(std::string(error.what()).find("7"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("3"), std::string::npos);
  }
}

TEST(Errors, Require) {
  EXPECT_NO_THROW(util::require(true, "never"));
  try {
    util::require(false, "the message");
    FAIL();
  } catch (const InvalidArgumentError& error) {
    EXPECT_STREQ(error.what(), "the message");
  }
}

TEST(Errors, QasmParseErrorFormatsLine) {
  const QasmParseError error("bad token", 12);
  EXPECT_EQ(error.line(), 12);
  EXPECT_NE(std::string(error.what()).find("line 12"), std::string::npos);
  EXPECT_NE(std::string(error.what()).find("bad token"), std::string::npos);
}

TEST(Version, Consistent) {
  const auto v = version();
  EXPECT_GE(v.major, 1);
  const std::string expected = std::to_string(v.major) + "." +
                               std::to_string(v.minor) + "." +
                               std::to_string(v.patch);
  EXPECT_EQ(versionString(), expected);
}

}  // namespace
}  // namespace qclab

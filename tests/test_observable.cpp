/// \file test_observable.cpp
/// \brief Unit tests for Pauli-string observables and expectation values.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

TEST(PauliString, ConstructionAndValidation) {
  const PauliString<double> p("XIZY", 1.5);
  EXPECT_EQ(p.nbQubits(), 4);
  EXPECT_EQ(p.paulis(), "XIZY");
  EXPECT_EQ(p.coefficient(), 1.5);
  EXPECT_EQ(p.weight(), 3);
  // Lowercase accepted and normalized.
  EXPECT_EQ(PauliString<double>("xz").paulis(), "XZ");
  EXPECT_THROW(PauliString<double>(""), InvalidArgumentError);
  EXPECT_THROW(PauliString<double>("XA"), InvalidArgumentError);
}

TEST(PauliString, MatrixMatchesKron) {
  const PauliString<double> p("XZ", 2.0);
  const auto expected =
      dense::kron(dense::pauliX<double>(), dense::pauliZ<double>()) * C(2.0);
  qclab::test::expectMatrixNear(p.matrix(), expected);
}

TEST(PauliString, ApplyMatchesMatrix) {
  random::Rng rng(1);
  for (const std::string paulis : {"X", "Y", "Z", "IXYZ", "YYXZ", "IIII"}) {
    const PauliString<double> p(paulis, 0.7);
    const int n = p.nbQubits();
    const auto state = qclab::test::randomState<double>(n, rng);
    const auto viaKernels = p.apply(state);
    const auto viaMatrix = p.matrix().apply(state);
    qclab::test::expectStateNear(viaKernels, viaMatrix, 1e-12);
  }
}

TEST(PauliString, ExpectationOfEigenstates) {
  // <0|Z|0> = 1, <1|Z|1> = -1, <+|X|+> = 1, <0|X|0> = 0.
  EXPECT_NEAR(PauliString<double>("Z").expectation(basisState<double>("0")),
              1.0, 1e-14);
  EXPECT_NEAR(PauliString<double>("Z").expectation(basisState<double>("1")),
              -1.0, 1e-14);
  const double h = 1.0 / std::sqrt(2.0);
  const std::vector<C> plus = {C(h), C(h)};
  EXPECT_NEAR(PauliString<double>("X").expectation(plus), 1.0, 1e-14);
  EXPECT_NEAR(PauliString<double>("X").expectation(basisState<double>("0")),
              0.0, 1e-14);
}

TEST(PauliString, BellCorrelations) {
  // For the Bell state: <XX> = <ZZ> = 1, <YY> = -1, single-qubit <Z> = 0.
  const double h = 1.0 / std::sqrt(2.0);
  const std::vector<C> bell = {C(h), C(0), C(0), C(h)};
  EXPECT_NEAR(PauliString<double>("XX").expectation(bell), 1.0, 1e-14);
  EXPECT_NEAR(PauliString<double>("ZZ").expectation(bell), 1.0, 1e-14);
  EXPECT_NEAR(PauliString<double>("YY").expectation(bell), -1.0, 1e-14);
  EXPECT_NEAR(PauliString<double>("ZI").expectation(bell), 0.0, 1e-14);
}

TEST(Observable, AddMergesDuplicateStrings) {
  Observable<double> obs(2);
  obs.add("ZZ", 1.0);
  obs.add("XI", 0.5);
  obs.add("ZZ", 2.0);
  EXPECT_EQ(obs.nbTerms(), 2u);
  EXPECT_NEAR(obs.terms()[0].coefficient(), 3.0, 1e-15);
}

TEST(Observable, Validation) {
  Observable<double> obs(2);
  EXPECT_THROW(obs.add("ZZZ", 1.0), InvalidArgumentError);
  EXPECT_THROW(Observable<double>(0), InvalidArgumentError);
}

TEST(Observable, ExpectationMatchesMatrix) {
  random::Rng rng(2);
  auto hamiltonian = isingHamiltonian<double>(3, 1.0, 0.5);
  const auto state = qclab::test::randomState<double>(3, rng);
  const auto matrix = hamiltonian.matrix();
  const auto hPsi = matrix.apply(state);
  const double viaMatrix = std::real(dense::inner(state, hPsi));
  EXPECT_NEAR(hamiltonian.expectation(state), viaMatrix, 1e-11);
}

TEST(Observable, MatrixIsHermitian) {
  const auto hamiltonian = isingHamiltonian<double>(4, 1.3, 0.7, true);
  EXPECT_TRUE(hamiltonian.matrix().isHermitian(1e-13));
}

TEST(Observable, VarianceOfEigenstateIsZero) {
  // |00> is an eigenstate of -J Z0 Z1 (no field).
  const auto hamiltonian = isingHamiltonian<double>(2, 1.0, 0.0);
  const auto state = basisState<double>("00");
  EXPECT_NEAR(hamiltonian.variance(state), 0.0, 1e-12);
  EXPECT_NEAR(hamiltonian.expectation(state), -1.0, 1e-13);
}

TEST(Observable, VarianceNonNegativeAndMatchesMoments) {
  random::Rng rng(3);
  const auto hamiltonian = isingHamiltonian<double>(3, 0.8, 0.6);
  for (int trial = 0; trial < 5; ++trial) {
    const auto state = qclab::test::randomState<double>(3, rng);
    const double variance = hamiltonian.variance(state);
    EXPECT_GE(variance, -1e-10);
    // Reference via dense matrices.
    const auto h = hamiltonian.matrix();
    const auto hPsi = h.apply(state);
    const double mean = std::real(dense::inner(state, hPsi));
    const double second = dense::normSquared(hPsi);
    EXPECT_NEAR(variance, second - mean * mean, 1e-10);
  }
}

TEST(Observable, IsingStructure) {
  // Open chain of 4: 3 bonds + 4 fields.
  EXPECT_EQ(isingHamiltonian<double>(4, 1.0, 1.0).nbTerms(), 7u);
  // Periodic chain of 4: 4 bonds + 4 fields.
  EXPECT_EQ(isingHamiltonian<double>(4, 1.0, 1.0, true).nbTerms(), 8u);
  // Zero-field terms still present as explicit 0-coefficient terms.
  const auto h = isingHamiltonian<double>(3, 1.0, 0.0);
  EXPECT_EQ(h.nbTerms(), 5u);
}

TEST(Observable, GroundStateEnergyOfTwoSiteIsing) {
  // H = -J Z0 Z1 - h (X0 + X1) for J = h = 1: ground energy of the 4x4
  // matrix; compare eigh result with the known value -sqrt(1 + ...).
  const auto hamiltonian = isingHamiltonian<double>(2, 1.0, 1.0);
  const auto eig = dense::eigh(hamiltonian.matrix());
  // Exact ground energy for two-site TFIM with J=h=1: -sqrt(5) ... verify
  // against direct numerical value instead of a closed form.
  EXPECT_NEAR(eig.values[0], -std::sqrt(5.0), 1e-10);
}

TEST(Observable, EnergyAfterCircuitEvolution) {
  // Rotating |0> by RX(pi) flips <Z> from +1 to -1.
  Observable<double> z(1);
  z.add("Z", 1.0);
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::RotationX<double>(0, M_PI));
  const auto state = circuit.simulate("0").state(0);
  EXPECT_NEAR(z.expectation(state), -1.0, 1e-12);
}

TEST(Observable, BranchAveragedExpectation) {
  // H then measure: branches |0> and |1> at 1/2 each; <Z> averages to 0
  // while each branch individually gives +-1.
  Observable<double> z(1);
  z.add("Z", 1.0);
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  const auto simulation = circuit.simulate("0");
  const double averaged = simulation.average(
      [&](const Branch<double>& branch) { return z.expectation(branch.state); });
  EXPECT_NEAR(averaged, 0.0, 1e-12);
  EXPECT_NEAR(z.expectation(simulation.state(0)), 1.0, 1e-12);
  EXPECT_NEAR(z.expectation(simulation.state(1)), -1.0, 1e-12);
}

TEST(Observable, AverageOfUnityIsOne) {
  auto circuit = qclab::test::randomCircuit<double>(3, 10, 4);
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(2));
  const auto simulation = circuit.simulate("000");
  EXPECT_NEAR(simulation.average([](const Branch<double>&) { return 1.0; }),
              1.0, 1e-10);
}

class PauliApplySweep : public ::testing::TestWithParam<int> {};

TEST_P(PauliApplySweep, RandomStringsMatchMatrices) {
  const int n = 4;
  random::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::string paulis;
  const char alphabet[4] = {'I', 'X', 'Y', 'Z'};
  for (int q = 0; q < n; ++q) {
    paulis += alphabet[rng.uniformInt(4)];
  }
  const PauliString<double> p(paulis, rng.uniform(-2.0, 2.0));
  const auto state = qclab::test::randomState<double>(n, rng);
  qclab::test::expectStateNear(p.apply(state), p.matrix().apply(state),
                               1e-12);
  // Pauli strings square to coefficient^2 * identity.
  PauliString<double> unit(paulis, 1.0);
  qclab::test::expectStateNear(unit.apply(unit.apply(state)), state, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PauliApplySweep, ::testing::Range(1, 11));

}  // namespace
}  // namespace qclab

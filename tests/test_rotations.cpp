/// \file test_rotations.cpp
/// \brief Unit tests for QAngle / QRotation (the numerically stable
/// (cos, sin) representation) and the rotation gates.

#include <gtest/gtest.h>

#include "qclab/qgates/qgates.hpp"
#include "test_helpers.hpp"

namespace qclab::qgates {
namespace {

using M = dense::Matrix<double>;
using C = std::complex<double>;

TEST(QAngle, DefaultIsZero) {
  QAngle<double> angle;
  EXPECT_EQ(angle.cos(), 1.0);
  EXPECT_EQ(angle.sin(), 0.0);
  EXPECT_EQ(angle.theta(), 0.0);
}

TEST(QAngle, ThetaRoundTrip) {
  for (double theta : {0.0, 0.5, -1.2, 3.0, -3.0}) {
    QAngle<double> angle(theta);
    EXPECT_NEAR(angle.theta(), theta, 1e-14);
    EXPECT_NEAR(angle.cos(), std::cos(theta), 1e-15);
    EXPECT_NEAR(angle.sin(), std::sin(theta), 1e-15);
  }
}

TEST(QAngle, PairConstructorValidatesNormalization) {
  EXPECT_NO_THROW(QAngle<double>(0.6, 0.8));
  EXPECT_THROW(QAngle<double>(0.6, 0.9), InvalidArgumentError);
}

TEST(QAngle, SumMatchesAngleAddition) {
  const QAngle<double> a(0.7), b(1.1);
  const auto sum = a + b;
  EXPECT_NEAR(sum.cos(), std::cos(1.8), 1e-14);
  EXPECT_NEAR(sum.sin(), std::sin(1.8), 1e-14);
  const auto diff = a - b;
  EXPECT_NEAR(diff.theta(), -0.4, 1e-14);
  EXPECT_NEAR((-a).theta(), -0.7, 1e-14);
}

TEST(QAngle, CompoundAssignment) {
  QAngle<double> angle(0.25);
  angle += QAngle<double>(0.5);
  EXPECT_NEAR(angle.theta(), 0.75, 1e-14);
  angle -= QAngle<double>(1.0);
  EXPECT_NEAR(angle.theta(), -0.25, 1e-14);
}

TEST(QAngle, LongFusionChainStaysNormalized) {
  // The whole point of the (cos, sin) representation: thousands of fusions
  // do not drift away from the unit circle.
  QAngle<double> accumulated;
  const QAngle<double> step(1e-3);
  for (int i = 0; i < 10000; ++i) accumulated += step;
  const double norm = accumulated.cos() * accumulated.cos() +
                      accumulated.sin() * accumulated.sin();
  EXPECT_NEAR(norm, 1.0, 1e-11);
  // theta() returns the principal value in (-pi, pi]: 10 rad == 10 - 4*pi.
  EXPECT_NEAR(accumulated.theta(), 10.0 - 4.0 * M_PI, 1e-10);
}

TEST(QRotation, HalfAngleStorage) {
  QRotation<double> rotation(1.0);
  EXPECT_NEAR(rotation.cos(), std::cos(0.5), 1e-15);
  EXPECT_NEAR(rotation.sin(), std::sin(0.5), 1e-15);
  EXPECT_NEAR(rotation.theta(), 1.0, 1e-14);
}

TEST(QRotation, FusionAndInverse) {
  const QRotation<double> a(0.8), b(0.4);
  EXPECT_NEAR((a * b).theta(), 1.2, 1e-14);
  EXPECT_NEAR((a / b).theta(), 0.4, 1e-14);
  EXPECT_NEAR(a.inverse().theta(), -0.8, 1e-14);
  EXPECT_TRUE((a * a.inverse()).approxEqual(QRotation<double>(), 1e-14));
}

TEST(RotationGates, MatrixForms) {
  const double theta = 0.9;
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  const auto rx = RotationX<double>(0, theta).matrix();
  EXPECT_NEAR(std::abs(rx(0, 0) - C(c)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(rx(0, 1) - C(0, -s)), 0.0, 1e-15);
  const auto ry = RotationY<double>(0, theta).matrix();
  EXPECT_NEAR(std::abs(ry(0, 1) - C(-s)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(ry(1, 0) - C(s)), 0.0, 1e-15);
  const auto rz = RotationZ<double>(0, theta).matrix();
  EXPECT_NEAR(std::abs(rz(0, 0) - std::polar(1.0, -theta / 2)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(rz(1, 1) - std::polar(1.0, theta / 2)), 0.0, 1e-15);
}

TEST(RotationGates, PiRotationsArePaulisUpToPhase) {
  // RX(pi) = -iX, RY(pi) = -iY, RZ(pi) = -iZ.
  qclab::test::expectMatrixNear(RotationX<double>(0, M_PI).matrix(),
                                dense::pauliX<double>() * C(0, -1));
  qclab::test::expectMatrixNear(RotationY<double>(0, M_PI).matrix(),
                                dense::pauliY<double>() * C(0, -1));
  qclab::test::expectMatrixNear(RotationZ<double>(0, M_PI).matrix(),
                                dense::pauliZ<double>() * C(0, -1));
}

TEST(RotationGates, CompositionMatchesMatrixProduct) {
  const double alpha = 0.7, beta = -1.3;
  for (int axis = 0; axis < 3; ++axis) {
    std::unique_ptr<QGate1<double>> a, b, sum;
    switch (axis) {
      case 0:
        a = std::make_unique<RotationX<double>>(0, alpha);
        b = std::make_unique<RotationX<double>>(0, beta);
        sum = std::make_unique<RotationX<double>>(0, alpha + beta);
        break;
      case 1:
        a = std::make_unique<RotationY<double>>(0, alpha);
        b = std::make_unique<RotationY<double>>(0, beta);
        sum = std::make_unique<RotationY<double>>(0, alpha + beta);
        break;
      default:
        a = std::make_unique<RotationZ<double>>(0, alpha);
        b = std::make_unique<RotationZ<double>>(0, beta);
        sum = std::make_unique<RotationZ<double>>(0, alpha + beta);
        break;
    }
    qclab::test::expectMatrixNear(a->matrix() * b->matrix(), sum->matrix());
  }
}

TEST(RotationGates, FuseUpdatesAngle) {
  RotationX<double> gate(0, 0.5);
  gate.fuse(QRotation<double>(0.25));
  EXPECT_NEAR(gate.theta(), 0.75, 1e-14);
  qclab::test::expectMatrixNear(gate.matrix(),
                                RotationX<double>(0, 0.75).matrix());
  gate.setTheta(-1.0);
  EXPECT_NEAR(gate.theta(), -1.0, 1e-14);
}

TEST(UGates, U3GeneratesNamedGates) {
  // U3(theta, 0, 0) == RY(theta).
  qclab::test::expectMatrixNear(U3<double>(0, 0.8, 0.0, 0.0).matrix(),
                                RotationY<double>(0, 0.8).matrix());
  // U3(0, 0, lambda) == Phase(lambda).
  qclab::test::expectMatrixNear(U3<double>(0, 0.0, 0.0, 0.6).matrix(),
                                Phase<double>(0, 0.6).matrix());
  // U2(phi, lambda) == U3(pi/2, phi, lambda).
  qclab::test::expectMatrixNear(U2<double>(0, 0.3, 1.1).matrix(),
                                U3<double>(0, M_PI_2, 0.3, 1.1).matrix());
  // u3(pi/2, 0, pi) == H.
  qclab::test::expectMatrixNear(U3<double>(0, M_PI_2, 0.0, M_PI).matrix(),
                                Hadamard<double>(0).matrix());
}

TEST(UGates, AccessorsAndInverse) {
  const U3<double> u(1, 0.5, -0.2, 0.9);
  EXPECT_NEAR(u.theta(), 0.5, 1e-14);
  EXPECT_NEAR(u.phi(), -0.2, 1e-14);
  EXPECT_NEAR(u.lambda(), 0.9, 1e-14);
  const auto inverse = u.inverse();
  qclab::test::expectMatrixNear(inverse->matrix() * u.matrix(),
                                M::identity(2));
  const U2<double> u2(0, 0.4, 1.3);
  EXPECT_NEAR(u2.phi(), 0.4, 1e-14);
  qclab::test::expectMatrixNear(u2.inverse()->matrix() * u2.matrix(),
                                M::identity(2));
}

class RotationAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(RotationAngleSweep, UnitaryAndInverseForAllAxes) {
  const double theta = GetParam();
  const RotationX<double> rx(0, theta);
  const RotationY<double> ry(0, theta);
  const RotationZ<double> rz(0, theta);
  for (const QGate1<double>* gate :
       {static_cast<const QGate1<double>*>(&rx),
        static_cast<const QGate1<double>*>(&ry),
        static_cast<const QGate1<double>*>(&rz)}) {
    EXPECT_TRUE(gate->matrix().isUnitary(1e-14));
    qclab::test::expectMatrixNear(gate->inverse()->matrix() * gate->matrix(),
                                  M::identity(2));
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, RotationAngleSweep,
                         ::testing::Values(-2.0 * M_PI, -M_PI, -0.5, 0.0,
                                           1e-8, 0.5, M_PI_2, M_PI,
                                           2.0 * M_PI));

}  // namespace
}  // namespace qclab::qgates

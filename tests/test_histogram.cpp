/// \file test_histogram.cpp
/// \brief Tests of the obs v2 additions: log2 latency histogram bucket
/// boundaries and percentile estimation, the per-thread sharded gate-kind
/// counters under concurrent recording, and live/high-water state-memory
/// accounting across branch spawn and prune.  Compiled in both obs modes;
/// the no-op expectations of QCLAB_OBS_DISABLED builds live at the end.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "qclab/qclab.hpp"

namespace {

using T = double;
using qclab::obs::HistogramSnapshot;
using qclab::sim::KernelPath;

#ifndef QCLAB_OBS_DISABLED

TEST(ObsHistogram, BucketBoundaries) {
  using qclab::obs::latencyBucketOf;
  EXPECT_EQ(latencyBucketOf(0), 0);   // zeros get their own bucket
  EXPECT_EQ(latencyBucketOf(1), 1);   // [1, 1]
  EXPECT_EQ(latencyBucketOf(2), 2);   // [2, 3]
  EXPECT_EQ(latencyBucketOf(3), 2);
  EXPECT_EQ(latencyBucketOf(4), 3);   // [4, 7]
  EXPECT_EQ(latencyBucketOf(1023), 10);
  EXPECT_EQ(latencyBucketOf(1024), 11);
  EXPECT_EQ(latencyBucketOf(std::numeric_limits<std::uint64_t>::max()),
            qclab::obs::kLatencyBuckets - 1);
}

TEST(ObsHistogram, RecordFillsTheRightBuckets) {
  qclab::obs::LatencyHistogram histogram;
  histogram.record(0);
  histogram.record(1);
  histogram.record(1);
  histogram.record(700);  // bucket 10: [512, 1023]
  histogram.record(std::numeric_limits<std::uint64_t>::max());

  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[10], 1u);
  EXPECT_EQ(snap.buckets[qclab::obs::kLatencyBuckets - 1], 1u);
  EXPECT_EQ(snap.sumNs,
            0u + 1u + 1u + 700u +
                std::numeric_limits<std::uint64_t>::max());
}

TEST(ObsHistogram, PercentilesInterpolateWithinBuckets) {
  qclab::obs::LatencyHistogram histogram;
  // 90 samples in bucket 7 ([64, 127]) and 10 in bucket 13 ([4096, 8191]).
  for (int i = 0; i < 90; ++i) histogram.record(100);
  for (int i = 0; i < 10; ++i) histogram.record(5000);

  const HistogramSnapshot snap = histogram.snapshot();
  const double p50 = snap.percentileNs(0.50);
  const double p90 = snap.percentileNs(0.90);
  const double p99 = snap.percentileNs(0.99);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 127.0);
  EXPECT_GE(p99, 4096.0);
  EXPECT_LE(p99, 8191.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(snap.meanNs(), (90.0 * 100.0 + 10.0 * 5000.0) / 100.0, 1e-9);
}

TEST(ObsHistogram, EmptyHistogramReportsZeros) {
  const qclab::obs::LatencyHistogram histogram;
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.percentileNs(0.50), 0.0);
  EXPECT_EQ(snap.meanNs(), 0.0);
}

TEST(ObsHistogram, PathTimerFeedsThePathHistogram) {
  auto& histograms = qclab::obs::latencyHistograms();
  histograms.reset();
  {
    const qclab::obs::PathTimer timer(KernelPath::kDense1);
  }
  EXPECT_EQ(histograms.histogram(KernelPath::kDense1).count(), 1u);
  EXPECT_EQ(histograms.histogram(KernelPath::kDenseK).count(), 0u);
  histograms.reset();
  EXPECT_EQ(histograms.histogram(KernelPath::kDense1).count(), 0u);
}

TEST(ObsHistogram, InstrumentedBackendRecordsLatencies) {
  qclab::obs::metrics().reset();
  qclab::obs::latencyHistograms().reset();

  qclab::QCircuit<T> circuit(3);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  circuit.push_back(qclab::qgates::RotationZ<T>(2, 0.4));
  const qclab::obs::InstrumentedBackend<T> backend;
  circuit.simulate("000", backend);

  // Applications are counted under the tier that did the work: on an
  // AVX2 machine the dense1/diagonal1 paths land in the kSimd* variants.
  const KernelPath dense1 =
      qclab::sim::simdCountedPath(KernelPath::kDense1, 1);
  const KernelPath diagonal1 =
      qclab::sim::simdCountedPath(KernelPath::kDiagonal1, 1);
  auto& histograms = qclab::obs::latencyHistograms();
  EXPECT_EQ(histograms.histogram(dense1).count(), 1u);
  EXPECT_EQ(histograms.histogram(KernelPath::kControlled1).count(), 1u);
  EXPECT_EQ(histograms.histogram(diagonal1).count(), 1u);
  // Per-path bytes feed the effective-bandwidth figures.
  EXPECT_GT(qclab::obs::metrics().bytesTouched(dense1), 0u);
}

TEST(ObsHistogram, FusionSweepsRecordFusedPathLatencies) {
  qclab::obs::metrics().reset();
  qclab::obs::latencyHistograms().reset();

  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::Hadamard<T>(1));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  qclab::SimulateOptions options;
  options.fusion = true;
  circuit.simulate("00", options);

  const auto& histograms = qclab::obs::latencyHistograms();
  EXPECT_GT(histograms.histogram(KernelPath::kFusedDenseK).count() +
                histograms.histogram(KernelPath::kFusedDiagonalK).count(),
            0u);
}

TEST(ObsShardedCounters, ConcurrentRecordingMergesExactly) {
  qclab::obs::ShardedCounters counters;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counters, t] {
      const std::string own = "thread-" + std::to_string(t % 2);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counters.add("shared", 1);
        counters.add(own, 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto merged = counters.snapshot();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.at("shared"), kThreads * kPerThread);
  EXPECT_EQ(merged.at("thread-0"), kThreads / 2 * kPerThread);
  EXPECT_EQ(merged.at("thread-1"), kThreads / 2 * kPerThread);

  counters.reset();
  EXPECT_TRUE(counters.snapshot().empty());
  // Shards survive a reset: the same threads' cells keep counting (here
  // the main thread warms its own cell post-reset).
  counters.add("shared", 2);
  EXPECT_EQ(counters.snapshot().at("shared"), 2u);
}

TEST(ObsShardedCounters, MetricsGateKindsUnderConcurrency) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        metrics.countGate(KernelPath::kDense1, "h", 16);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(metrics.gateKinds().at("h"), kThreads * kPerThread);
  EXPECT_EQ(metrics.gateApplications(KernelPath::kDense1),
            kThreads * kPerThread);
  metrics.reset();
}

TEST(ObsMemory, HighWaterTracksBranchSpawnAndPrune) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();
  const std::uint64_t before = metrics.currentStateBytes();

  // 3 qubits: 8 amplitudes * 16 bytes = 128 bytes per branch state.
  const std::uint64_t branchBytes = 8 * sizeof(std::complex<T>);
  {
    qclab::QCircuit<T> circuit(3);
    circuit.push_back(qclab::qgates::Hadamard<T>(0));
    circuit.push_back(qclab::Measurement<T>(0));  // spawns a second branch
    circuit.push_back(qclab::Measurement<T>(0));  // prunes (deterministic)
    const auto simulation = circuit.simulate("000");
    ASSERT_EQ(simulation.nbBranches(), 2u);
    EXPECT_EQ(metrics.currentStateBytes(), before + 2 * branchBytes);
    EXPECT_GE(metrics.peakStateBytes(), before + 2 * branchBytes);
    EXPECT_EQ(metrics.branchSpawns(), 1u);
    EXPECT_EQ(metrics.branchPrunes(), 2u);
  }
  // Simulation destroyed: its branch states release their attribution.
  EXPECT_EQ(metrics.currentStateBytes(), before);
  EXPECT_GE(metrics.peakStateBytes(), before + 2 * branchBytes);
}

TEST(ObsMemory, MoveTransfersAttributionCopyAddsIt) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();
  const std::uint64_t before = metrics.currentStateBytes();
  const std::uint64_t stateBytes = 4 * sizeof(std::complex<T>);

  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  auto simulation = circuit.simulate("00");
  EXPECT_EQ(metrics.currentStateBytes(), before + stateBytes);

  auto moved = std::move(simulation);
  EXPECT_EQ(metrics.currentStateBytes(), before + stateBytes);

  {
    const auto copy = moved;  // NOLINT(performance-unnecessary-copy)
    EXPECT_EQ(metrics.currentStateBytes(), before + 2 * stateBytes);
  }
  EXPECT_EQ(metrics.currentStateBytes(), before + stateBytes);
}

TEST(ObsMemory, DensitySimulationAttributesMatrixBytes) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();
  const std::uint64_t before = metrics.peakStateBytes();

  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  const auto rho = qclab::noise::simulateDensity(circuit, "00");
  // 2 qubits: 16 density-matrix amplitudes * 16 bytes = 256 bytes peak.
  EXPECT_GE(metrics.peakStateBytes(),
            before + 16 * sizeof(std::complex<T>));
}

#else  // QCLAB_OBS_DISABLED

TEST(ObsDisabledV2, HistogramsAndMemoryAreInertNoOps) {
  auto& histograms = qclab::obs::latencyHistograms();
  histograms.record(KernelPath::kDense1, 1234);
  EXPECT_EQ(histograms.histogram(KernelPath::kDense1).count(), 0u);
  EXPECT_TRUE(histograms.histogram(KernelPath::kDense1).snapshot().empty());

  auto& metrics = qclab::obs::metrics();
  metrics.addStateBytes(4096);
  EXPECT_EQ(metrics.currentStateBytes(), 0u);
  EXPECT_EQ(metrics.peakStateBytes(), 0u);
  EXPECT_EQ(metrics.bytesTouched(KernelPath::kDense1), 0u);

  // Simulations still run (and retrackStateBytes compiles to nothing).
  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::Measurement<T>(0));
  const auto simulation = circuit.simulate("00");
  EXPECT_EQ(simulation.nbBranches(), 2u);
  EXPECT_EQ(metrics.currentStateBytes(), 0u);
}

#endif  // QCLAB_OBS_DISABLED

}  // namespace

/// \file test_openmetrics.cpp
/// \brief Tests of the OpenMetrics exporter (obs/openmetrics.hpp): text
/// exposition validity, snapshot/delta semantics, and the all-zero but
/// still-valid output of the QCLAB_OBS_DISABLED build (which compiles
/// this same file).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "qclab/qclab.hpp"

namespace {

using T = double;
using qclab::sim::KernelPath;

// ---- minimal OpenMetrics exposition checker ---------------------------
// Validates the structural rules the exporter promises: every sample
// belongs to a family announced by a preceding "# TYPE" line, counter
// samples carry the "_total" suffix, histogram buckets are cumulative and
// end at "+Inf", and the exposition terminates with "# EOF".

struct OpenMetricsChecker {
  std::map<std::string, std::string> familyTypes;  // family -> kind
  std::vector<std::string> errors;

  /// Longest announced family that prefixes `name` with a legal suffix.
  std::string familyOf(const std::string& name) const {
    std::string best;
    for (const auto& [family, kind] : familyTypes) {
      if (name.compare(0, family.size(), family) != 0) continue;
      const std::string suffix = name.substr(family.size());
      const bool legal = suffix.empty() || suffix == "_total" ||
                         suffix == "_bucket" || suffix == "_sum" ||
                         suffix == "_count" || suffix == "_info";
      if (legal && family.size() > best.size()) best = family;
    }
    return best;
  }

  bool check(const std::string& exposition) {
    std::istringstream in(exposition);
    std::string line;
    bool sawEof = false;
    // path label -> cumulative bucket counts in order of appearance
    std::map<std::string, std::vector<std::uint64_t>> buckets;
    std::map<std::string, std::uint64_t> histogramCounts;
    while (std::getline(in, line)) {
      if (sawEof) {
        errors.push_back("content after # EOF: " + line);
        continue;
      }
      if (line.empty()) {
        errors.push_back("blank line in exposition");
        continue;
      }
      if (line == "# EOF") {
        sawEof = true;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream meta(line.substr(7));
        std::string family;
        std::string kind;
        meta >> family >> kind;
        if (familyTypes.count(family)) {
          errors.push_back("duplicate # TYPE for " + family);
        }
        familyTypes[family] = kind;
        continue;
      }
      if (line.rfind("# HELP ", 0) == 0) continue;
      if (line[0] == '#') {
        errors.push_back("unknown comment: " + line);
        continue;
      }
      // Sample line: name[{labels}] value
      const std::size_t brace = line.find('{');
      const std::size_t space = line.find(' ');
      std::string name;
      std::string labels;
      if (brace != std::string::npos && brace < space) {
        name = line.substr(0, brace);
        const std::size_t close = line.find('}', brace);
        if (close == std::string::npos) {
          errors.push_back("unterminated label set: " + line);
          continue;
        }
        labels = line.substr(brace + 1, close - brace - 1);
      } else {
        if (space == std::string::npos) {
          errors.push_back("sample without value: " + line);
          continue;
        }
        name = line.substr(0, space);
      }
      const std::string family = familyOf(name);
      if (family.empty()) {
        errors.push_back("sample without preceding # TYPE: " + name);
        continue;
      }
      const std::string kind = familyTypes[family];
      const std::string suffix = name.substr(family.size());
      if (kind == "counter" && suffix != "_total") {
        errors.push_back("counter sample missing _total: " + name);
      }
      if (kind == "info" && suffix != "_info") {
        errors.push_back("info sample missing _info: " + name);
      }
      const double value =
          std::stod(line.substr(line.rfind(' ') + 1));
      if (kind == "histogram" && suffix == "_bucket") {
        // Key cumulative sequences by the full label set minus `le`.
        const std::size_t le = labels.find(",le=");
        const std::string key = labels.substr(0, le);
        buckets[key].push_back(static_cast<std::uint64_t>(value));
      }
      if (kind == "histogram" && suffix == "_count") {
        histogramCounts[labels] = static_cast<std::uint64_t>(value);
      }
    }
    if (!sawEof) errors.push_back("missing terminating # EOF");
    for (const auto& [key, seq] : buckets) {
      for (std::size_t i = 1; i < seq.size(); ++i) {
        if (seq[i] < seq[i - 1]) {
          errors.push_back("non-cumulative buckets for " + key);
          break;
        }
      }
      const auto count = histogramCounts.find(key);
      if (count == histogramCounts.end()) {
        errors.push_back("histogram without _count: " + key);
      } else if (!seq.empty() && seq.back() != count->second) {
        errors.push_back("+Inf bucket != _count for " + key);
      }
    }
    return errors.empty();
  }

  std::string report() const {
    std::string out;
    for (const auto& error : errors) out += error + "\n";
    return out;
  }
};

void runGhz(int n) {
  qclab::QCircuit<T> circuit(n);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  for (int q = 1; q < n; ++q) {
    circuit.push_back(qclab::qgates::CX<T>(q - 1, q));
  }
  const qclab::obs::InstrumentedBackend<T> backend;
  circuit.simulate(std::string(static_cast<std::size_t>(n), '0'), backend);
}

// ---- exposition validity (all builds) ---------------------------------

TEST(OpenMetrics, ExpositionIsStructurallyValid) {
  qclab::obs::resetAll();
  runGhz(4);
  const std::string exposition = qclab::obs::renderOpenMetrics();
  OpenMetricsChecker checker;
  EXPECT_TRUE(checker.check(exposition))
      << checker.report() << "\n" << exposition;
  // The build info family renders in every build.
  EXPECT_NE(exposition.find("qclab_build_info{"), std::string::npos);
  EXPECT_NE(exposition.find("# EOF\n"), std::string::npos);
  qclab::obs::resetAll();
}

TEST(OpenMetrics, LabelEscaping) {
  EXPECT_EQ(qclab::obs::detail::openMetricsLabel("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
  EXPECT_EQ(qclab::obs::detail::openMetricsLabel("plain"), "plain");
}

#ifndef QCLAB_OBS_DISABLED

// ---- live-registry semantics (enabled builds only) --------------------

TEST(OpenMetrics, CountersReflectRegistries) {
  qclab::obs::resetAll();
  runGhz(5);  // 1 H + 4 CX = 5 gate applications
  const std::string exposition = qclab::obs::renderOpenMetrics();
  EXPECT_NE(exposition.find("qclab_gate_applications_total 5"),
            std::string::npos);
  EXPECT_NE(exposition.find("qclab_circuit_simulations_total 1"),
            std::string::npos);
  // Per-kind and per-path families carry the same activity.
  EXPECT_NE(exposition.find(
                "qclab_kind_gate_applications_total{kind=\"cX\"} 4"),
            std::string::npos);
  EXPECT_NE(exposition.find("qclab_path_gate_applications_total{path="),
            std::string::npos);
  // Stage spans from simulate surface as stage families.
  EXPECT_NE(exposition.find(
                "qclab_stage_runs_total{stage=\"simulate\"} 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("qclab_stage_duration_seconds_total{"),
            std::string::npos);
  // Gate timings populate the latency histogram family.
  EXPECT_NE(exposition.find("qclab_path_latency_seconds_bucket{"),
            std::string::npos);
  EXPECT_NE(exposition.find("le=\"+Inf\""), std::string::npos);
  qclab::obs::resetAll();
}

TEST(OpenMetrics, BatchAndFlightFamiliesRender) {
  qclab::obs::resetAll();
  // A parameterized 3-qubit ansatz swept over 3 members exercises the
  // batch engine, whose activity must surface in the exposition: run and
  // member counters, the kBatch latency family, and flight events.
  qclab::QCircuit<T> circuit(3);
  for (int q = 0; q < 3; ++q) {
    circuit.push_back(qclab::qgates::RotationY<T>(q, 0.1));
  }
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  circuit.simulateBatch({{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}, {0.7, 0.8, 0.9}});

  const std::string exposition = qclab::obs::renderOpenMetrics();
  OpenMetricsChecker checker;
  EXPECT_TRUE(checker.check(exposition))
      << checker.report() << "\n" << exposition;
  EXPECT_NE(exposition.find("qclab_batch_runs_total 1"), std::string::npos);
  EXPECT_NE(exposition.find("qclab_batch_members_simulated_total 3"),
            std::string::npos);
  // Member execution is timed under KernelPath::kBatch.
  EXPECT_NE(exposition.find(
                "qclab_path_latency_seconds_count{path=\"batch\"} 3"),
            std::string::npos);
  // Batch stage spans surface through the stage families.
  EXPECT_NE(exposition.find(
                "qclab_stage_runs_total{stage=\"batch\"} 1"),
            std::string::npos);
  // The flight recorder saw the member events (and possibly more).
  EXPECT_NE(exposition.find("qclab_flight_events_recorded_total"),
            std::string::npos);
  EXPECT_GE(qclab::obs::flightRecorder().totalRecorded(), 3u);
  // Sentinel counter families render in every enabled build.
  EXPECT_NE(exposition.find("qclab_sentinel_checks_total"),
            std::string::npos);

  // Deltas subtract batch counters like every other counter.
  const qclab::obs::ObsSnapshot before = qclab::obs::captureSnapshot();
  circuit.simulateBatch({{1.0, 1.1, 1.2}});
  const qclab::obs::ObsSnapshot delta = qclab::obs::snapshotDelta(before);
  EXPECT_EQ(delta.batchRuns, 1u);
  EXPECT_EQ(delta.batchMembersSimulated, 1u);
  qclab::obs::resetAll();
}

TEST(OpenMetrics, SnapshotDeltaUnderConcurrentCounterUpdates) {
  qclab::obs::resetAll();
  // Snapshots race benignly with concurrent recording: every capture must
  // stay internally usable (no torn 64-bit reads, per-field monotonic
  // against an earlier capture) while worker threads hammer the counter,
  // histogram, and stage registries.  Runs under TSan in CI.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&stop]() {
      while (!stop.load(std::memory_order_relaxed)) {
        qclab::obs::metrics().countGate(KernelPath::kDense1, "h", 64);
        qclab::obs::latencyHistograms().record(KernelPath::kDense1, 100);
        qclab::obs::stageStats().record("concurrent", 50);
      }
    });
  }

  qclab::obs::ObsSnapshot previous = qclab::obs::captureSnapshot();
  for (int i = 0; i < 50; ++i) {
    const qclab::obs::ObsSnapshot delta =
        qclab::obs::snapshotDelta(previous);
    // saturatingSub guarantees deltas never wrap below zero even while
    // the registries move under the capture.
    EXPECT_LE(delta.gateApplications,
              std::uint64_t{1} << 62);  // not a wrapped negative
    const qclab::obs::ObsSnapshot current = qclab::obs::captureSnapshot();
    EXPECT_GE(current.gateApplications, previous.gateApplications);
    EXPECT_GE(current.bytesTouched, previous.bytesTouched);
    const auto i1 = static_cast<std::size_t>(KernelPath::kDense1);
    EXPECT_GE(current.gateByPath[i1], previous.gateByPath[i1]);
    EXPECT_GE(current.histograms[i1].count, previous.histograms[i1].count);
    previous = current;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();

  // The final exposition still renders structurally valid.
  OpenMetricsChecker checker;
  EXPECT_TRUE(checker.check(qclab::obs::renderOpenMetrics()))
      << checker.report();
  qclab::obs::resetAll();
}

TEST(OpenMetrics, SnapshotDeltaSubtractsPriorActivity) {
  qclab::obs::resetAll();
  runGhz(4);  // 4 gates of history
  const qclab::obs::ObsSnapshot before = qclab::obs::captureSnapshot();
  ASSERT_EQ(before.gateApplications, 4u);

  runGhz(4);  // 4 more
  const qclab::obs::ObsSnapshot delta = qclab::obs::snapshotDelta(before);
  EXPECT_EQ(delta.gateApplications, 4u);
  EXPECT_EQ(delta.circuitSimulations, 1u);
  ASSERT_TRUE(delta.gateByKind.count("cX"));
  EXPECT_EQ(delta.gateByKind.at("cX"), 3u);
  ASSERT_TRUE(delta.stages.count("simulate"));
  EXPECT_EQ(delta.stages.at("simulate").count, 1u);

  // Histogram buckets subtract to the per-period activity.
  std::uint64_t histogramCount = 0;
  for (const auto& histogram : delta.histograms) {
    histogramCount += histogram.count;
  }
  EXPECT_EQ(histogramCount, 4u);

  // A delta against a fresh snapshot is all zero.
  const qclab::obs::ObsSnapshot now = qclab::obs::captureSnapshot();
  const qclab::obs::ObsSnapshot zero = qclab::obs::snapshotDelta(now);
  EXPECT_EQ(zero.gateApplications, 0u);
  EXPECT_EQ(zero.circuitSimulations, 0u);

  // The delta renders as a valid exposition too.
  OpenMetricsChecker checker;
  EXPECT_TRUE(checker.check(qclab::obs::renderOpenMetrics(delta)))
      << checker.report();
  qclab::obs::resetAll();
}

#else  // QCLAB_OBS_DISABLED

// ---- no-op build (disabled builds only) -------------------------------

TEST(OpenMetricsDisabled, RendersValidAllZeroExposition) {
  runGhz(4);  // must leave no trace
  const std::string exposition = qclab::obs::renderOpenMetrics();
  OpenMetricsChecker checker;
  EXPECT_TRUE(checker.check(exposition))
      << checker.report() << "\n" << exposition;
  EXPECT_NE(exposition.find("qclab_gate_applications_total 0"),
            std::string::npos);
  EXPECT_NE(exposition.find("obs=\"false\""), std::string::npos);
  // No per-path, per-kind, stage, or perf families: nothing was recorded.
  EXPECT_EQ(exposition.find("qclab_path_"), std::string::npos);
  EXPECT_EQ(exposition.find("qclab_stage_"), std::string::npos);

  // Snapshot/delta stay inert.
  const qclab::obs::ObsSnapshot snap = qclab::obs::captureSnapshot();
  EXPECT_EQ(snap.gateApplications, 0u);
  EXPECT_TRUE(snap.stages.empty());
  const qclab::obs::ObsSnapshot delta = qclab::obs::snapshotDelta(snap);
  EXPECT_EQ(delta.gateApplications, 0u);
}

#endif  // QCLAB_OBS_DISABLED

}  // namespace

/// \file test_fusion_rebind.cpp
/// \brief Tests of fusion-plan parameter rebinding: the stale-matrix
/// regression (a plan does NOT see setTheta until rebound), bitwise
/// equivalence of rebindFusionPlan with re-fusing from scratch, and the
/// firstBlock variants used by the batched engine's prefix cache.

#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <vector>

#include "test_helpers.hpp"

namespace qclab::sim {
namespace {

using namespace qclab::qgates;

template <typename T>
std::vector<GateRef<T>> gateRefs(const QCircuit<T>& circuit) {
  std::vector<GateRef<T>> refs;
  for (const auto& object : circuit) {
    refs.push_back({static_cast<const QGate<T>*>(object.get()), 0});
  }
  return refs;
}

template <typename T>
std::vector<std::complex<T>> zeroState(int nbQubits) {
  std::vector<std::complex<T>> state(std::size_t{1} << nbQubits);
  state[0] = std::complex<T>(1);
  return state;
}

template <typename T>
bool bitIdentical(const std::vector<std::complex<T>>& a,
                  const std::vector<std::complex<T>>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(),
                     a.size() * sizeof(std::complex<T>)) == 0;
}

/// Bitwise comparison of two plans' materialized products.
template <typename T>
void expectPlansBitIdentical(const FusionPlan<T>& a, const FusionPlan<T>& b) {
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    const auto& x = a.blocks[i];
    const auto& y = b.blocks[i];
    ASSERT_EQ(x.qubits, y.qubits);
    ASSERT_EQ(x.diagonal, y.diagonal);
    if (x.diagonal) {
      ASSERT_TRUE(bitIdentical(x.diag, y.diag)) << "diag block " << i;
    } else {
      ASSERT_EQ(x.matrix.rows(), y.matrix.rows());
      ASSERT_EQ(std::memcmp(x.matrix.data(), y.matrix.data(),
                            x.matrix.rows() * x.matrix.cols() *
                                sizeof(std::complex<T>)),
                0)
          << "dense block " << i;
    }
  }
}

// ---- the stale-matrix regression --------------------------------------

TEST(FusionRebind, SetThetaAloneLeavesPlanStale) {
  // Regression: a fusion plan captures gate matrices at build time.
  // Mutating theta afterwards must not silently change the plan — and
  // rebinding must pick the mutation up.
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(RotationZ<double>(1, 0.3));
  circuit.push_back(CX<double>(0, 1));
  const auto refs = gateRefs(circuit);

  FusionOptions options;
  options.maxQubits = 2;
  auto plan = fuseGates(refs, 2, options);

  auto before = zeroState<double>(2);
  applyFusionPlan(before, 2, plan);

  // Mutate the angle; the un-rebound plan still produces the old state.
  static_cast<RotationZ<double>&>(circuit.objectAt(1)).setTheta(-1.2);
  auto stale = zeroState<double>(2);
  applyFusionPlan(stale, 2, plan);
  EXPECT_TRUE(bitIdentical(stale, before));

  // Rebinding refreshes the products: the result changes and matches a
  // plan fused from the mutated circuit bit for bit.
  rebindFusionPlan(plan, refs);
  auto rebound = zeroState<double>(2);
  applyFusionPlan(rebound, 2, plan);
  EXPECT_FALSE(bitIdentical(rebound, before));

  const auto fresh = fuseGates(refs, 2, options);
  auto direct = zeroState<double>(2);
  applyFusionPlan(direct, 2, fresh);
  EXPECT_TRUE(bitIdentical(rebound, direct));
}

// ---- rebind == re-fuse, bit for bit -----------------------------------

TEST(FusionRebind, MatchesFreshFuseOnRandomCircuits) {
  random::Rng rng(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.uniformInt(4));  // 2..5 qubits
    QCircuit<double> circuit(n);
    test::addRandomGates(circuit, 24, rng);
    const auto refs = gateRefs(circuit);

    FusionOptions options;
    options.maxQubits = 2 + static_cast<int>(rng.uniformInt(2));
    options.separateDiagonalRuns = rng.uniformInt(2) == 1;
    options.diagonalMaxQubits = n;
    auto plan = fuseGates(refs, n, options);

    // Mutate every bindable angle, then rebind.
    ParameterBinding<double> binding(circuit);
    std::vector<double> values(binding.nbParameters());
    for (auto& value : values) value = rng.uniform(-3.0, 3.0);
    binding.bind(values);
    rebindFusionPlan(plan, refs);

    expectPlansBitIdentical(plan, fuseGates(refs, n, options));
  }
}

// ---- firstBlock variants (prefix-cache support) -----------------------

TEST(FusionRebind, FirstBlockSkipsLeadingBlocks) {
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));  // block 0 (parameter-free)
  circuit.push_back(Hadamard<double>(1));
  circuit.push_back(RotationZ<double>(2, 0.5));  // later block
  const auto refs = gateRefs(circuit);

  FusionOptions options;
  options.maxQubits = 2;
  auto plan = fuseGates(refs, 3, options);
  ASSERT_GE(plan.blocks.size(), 2u);

  // Poison block 0's matrix, then rebind from block 1: the poison must
  // survive (block 0 untouched) while later blocks refresh.
  static_cast<RotationZ<double>&>(circuit.objectAt(2)).setTheta(-2.0);
  plan.blocks[0].matrix(0, 0) = std::complex<double>(42.0, 0.0);
  rebindFusionPlan(plan, refs, 1);
  EXPECT_EQ(plan.blocks[0].matrix(0, 0), std::complex<double>(42.0, 0.0));

  const auto fresh = fuseGates(refs, 3, options);
  for (std::size_t i = 1; i < plan.blocks.size(); ++i) {
    const auto& x = plan.blocks[i];
    const auto& y = fresh.blocks[i];
    if (x.diagonal) {
      EXPECT_TRUE(bitIdentical(x.diag, y.diag));
    } else {
      EXPECT_EQ(std::memcmp(x.matrix.data(), y.matrix.data(),
                            x.matrix.rows() * x.matrix.cols() *
                                sizeof(std::complex<double>)),
                0);
    }
  }
}

TEST(FusionRebind, ApplyFromFirstBlockMatchesManualSplit) {
  random::Rng rng(7);
  const int n = 5;
  QCircuit<double> circuit(n);
  test::addRandomGates(circuit, 30, rng);
  const auto refs = gateRefs(circuit);

  FusionOptions options;
  options.maxQubits = 2;
  options.blocking = true;
  const auto plan = fuseGates(refs, n, options);
  ASSERT_GE(plan.blocks.size(), 3u);

  auto full = zeroState<double>(n);
  applyFusionPlan(full, n, plan);

  for (std::size_t cut : {std::size_t{1}, plan.blocks.size() / 2,
                          plan.blocks.size() - 1}) {
    // Prefix applied block by block, tail via firstBlock: bit-identical
    // to the uncut application (kernel path choice never depends on
    // where a sweep starts).
    auto split = zeroState<double>(n);
    const std::uint64_t bytes = 2 * split.size() * sizeof(std::complex<double>);
    for (std::size_t i = 0; i < cut; ++i) {
      detail::applyFusedBlock(split, n, plan.blocks[i], bytes);
    }
    applyFusionPlan(split, n, plan, cut);
    EXPECT_TRUE(bitIdentical(split, full)) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace qclab::sim

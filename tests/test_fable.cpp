/// \file test_fable.cpp
/// \brief Unit tests for multiplexed rotations and FABLE block encodings.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab::algorithms {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

/// Reference multiplexed-RY matrix: block-diagonal RY(theta_i).
M referenceMultiplexedRY(const std::vector<double>& angles) {
  M result = qgates::RotationY<double>(0, angles[0]).matrix();
  for (std::size_t i = 1; i < angles.size(); ++i) {
    result = dense::directSum(
        result, qgates::RotationY<double>(0, angles[i]).matrix());
  }
  return result;
}

TEST(MultiplexedRY, NoControlsIsPlainRotation) {
  const auto circuit = multiplexedRY<double>({}, 0, {0.7});
  qclab::test::expectMatrixNear(circuit.matrix(),
                                qgates::RotationY<double>(0, 0.7).matrix());
}

TEST(MultiplexedRY, OneControl) {
  // Controls MSB-first; target after the control -> block diag(RY(t0),
  // RY(t1)).
  const std::vector<double> angles = {0.3, -1.1};
  const auto circuit = multiplexedRY<double>({0}, 1, angles);
  qclab::test::expectMatrixNear(circuit.matrix(),
                                referenceMultiplexedRY(angles), 1e-12);
}

TEST(MultiplexedRY, TwoControls) {
  const std::vector<double> angles = {0.2, -0.5, 1.3, 2.1};
  const auto circuit = multiplexedRY<double>({0, 1}, 2, angles);
  qclab::test::expectMatrixNear(circuit.matrix(),
                                referenceMultiplexedRY(angles), 1e-12);
}

TEST(MultiplexedRY, ThreeControls) {
  random::Rng rng(1);
  std::vector<double> angles(8);
  for (auto& angle : angles) angle = rng.uniform(-3.0, 3.0);
  const auto circuit = multiplexedRY<double>({0, 1, 2}, 3, angles);
  qclab::test::expectMatrixNear(circuit.matrix(),
                                referenceMultiplexedRY(angles), 1e-11);
  // 2^3 rotations + 2(2^3 - 1) CNOTs from the recursive decomposition.
  EXPECT_EQ(circuit.nbObjectsRecursive(), 22u);
}

TEST(MultiplexedRZ, MatchesBlockDiagonal) {
  const std::vector<double> angles = {0.4, -0.9, 0.0, 1.7};
  const auto circuit = multiplexedRZ<double>({0, 1}, 2, angles);
  M expected = qgates::RotationZ<double>(0, angles[0]).matrix();
  for (std::size_t i = 1; i < angles.size(); ++i) {
    expected = dense::directSum(
        expected, qgates::RotationZ<double>(0, angles[i]).matrix());
  }
  qclab::test::expectMatrixNear(circuit.matrix(), expected, 1e-12);
}

TEST(MultiplexedRY, DropTolPrunesRotations) {
  // Nonzero angles: 4 RY + 2(2^2 - 1) CX.
  const auto full = multiplexedRY<double>({0, 1}, 2, {0.1, 0.2, 0.3, 0.4});
  EXPECT_EQ(full.nbObjectsRecursive(), 10u);
  // All angles zero: only the CNOT scaffold remains (exactly-zero
  // rotations are dropped even at dropTol = 0), and the scaffold cancels
  // entirely in the transpiler.
  const auto scaffold = multiplexedRY<double>({0, 1}, 2, {0, 0, 0, 0});
  EXPECT_EQ(scaffold.nbObjectsRecursive(), 6u);
  EXPECT_EQ(transpile::cancelInversePairs(scaffold).nbObjectsRecursive(),
            0u);
}

TEST(MultiplexedRYGray, MatchesRecursiveConstruction) {
  random::Rng rng(4);
  for (int k = 0; k <= 4; ++k) {
    std::vector<double> angles(std::size_t{1} << k);
    for (auto& angle : angles) angle = rng.uniform(-3.0, 3.0);
    std::vector<int> controls(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) controls[static_cast<std::size_t>(i)] = i;
    const auto gray = multiplexedRYGray<double>(controls, k, angles);
    const auto recursive = multiplexedRY<double>(controls, k, angles);
    SCOPED_TRACE("k=" + std::to_string(k));
    qclab::test::expectMatrixNear(gray.matrix(), recursive.matrix(), 1e-10);
  }
}

TEST(MultiplexedRYGray, UsesFewerCnots) {
  // Irregular angles so no sum/difference combination hits exactly zero.
  std::vector<double> angles(8);
  for (std::size_t i = 0; i < 8; ++i) {
    angles[i] = 0.1 * static_cast<double>((i + 1) * (i + 1)) + 0.013;
  }
  const auto gray = multiplexedRYGray<double>({0, 1, 2}, 3, angles);
  const auto recursive = multiplexedRY<double>({0, 1, 2}, 3, angles);
  // Gray code: <= 8 RY + 8 CX = 16 (exact zeros in the transformed angles
  // may prune further); recursive: 8 RY + 14 CX = 22.
  EXPECT_LE(gray.nbObjectsRecursive(), 16u);
  EXPECT_EQ(recursive.nbObjectsRecursive(), 22u);
  EXPECT_LT(gray.nbObjectsRecursive(), recursive.nbObjectsRecursive());
}

TEST(MultiplexedRZGray, MatchesBlockDiagonal) {
  random::Rng rng(5);
  std::vector<double> angles(4);
  for (auto& angle : angles) angle = rng.uniform(-3.0, 3.0);
  const auto gray = multiplexedRZGray<double>({0, 1}, 2, angles);
  M expected = qgates::RotationZ<double>(0, angles[0]).matrix();
  for (std::size_t i = 1; i < angles.size(); ++i) {
    expected = dense::directSum(
        expected, qgates::RotationZ<double>(0, angles[i]).matrix());
  }
  qclab::test::expectMatrixNear(gray.matrix(), expected, 1e-11);
}

TEST(MultiplexedRYGray, CompressionActsOnTransformedAngles) {
  // Constant angle vector: one nonzero transformed coefficient, and the
  // CNOT parities between dropped rotations cancel completely.
  const std::vector<double> angles(8, 0.9);
  const auto compressed =
      multiplexedRYGray<double>({0, 1, 2}, 3, angles, 1e-12);
  const auto reference = multiplexedRY<double>({0, 1, 2}, 3, angles);
  qclab::test::expectMatrixNear(compressed.matrix(), reference.matrix(),
                                1e-10);
  EXPECT_EQ(compressed.nbObjectsRecursive(), 1u);  // a single RY
}

TEST(MultiplexedRY, Validation) {
  EXPECT_THROW(multiplexedRY<double>({0}, 1, {0.1}), InvalidArgumentError);
  EXPECT_THROW(multiplexedRY<double>({0, 1}, 2, {0.1, 0.2}),
               InvalidArgumentError);
}

TEST(Fable, EncodesIdentity) {
  const auto encoding = fable<double>(M::identity(2));
  EXPECT_EQ(encoding.circuit.nbQubits(), 3);
  EXPECT_NEAR(encoding.alpha, 2.0, 1e-15);
  qclab::test::expectMatrixNear(encodedBlock(encoding, 2), M::identity(2),
                                1e-11);
}

TEST(Fable, EncodesRandomRealMatrices) {
  random::Rng rng(2);
  for (int n = 1; n <= 3; ++n) {
    const std::size_t dim = std::size_t{1} << n;
    M a(dim, dim);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) {
        a(i, j) = C(rng.uniform(-1.0, 1.0));
      }
    }
    const auto encoding = fable<double>(a);
    EXPECT_EQ(encoding.circuit.nbQubits(), 2 * n + 1);
    qclab::test::expectMatrixNear(encodedBlock(encoding, dim), a, 1e-9);
    EXPECT_TRUE(encoding.circuit.matrix().isUnitary(1e-10));
  }
}

TEST(Fable, EncodesScaledHadamard) {
  // Entries +-1/sqrt(2).
  const double h = 1.0 / std::sqrt(2.0);
  M a{{h, h}, {h, -h}};
  const auto encoding = fable<double>(a);
  qclab::test::expectMatrixNear(encodedBlock(encoding, 2), a, 1e-11);
}

TEST(Fable, CompressionPreservesBlockOnSparseMatrices) {
  // A matrix with many zeros: theta = 2 acos(0) = pi everywhere except the
  // few structure entries; compression applies after the Walsh-style
  // averaging inside the recursion, so verify correctness, not savings.
  M a(4, 4);
  a(0, 0) = C(0.5);
  a(1, 2) = C(-0.25);
  a(3, 3) = C(1.0);
  const auto plain = fable<double>(a);
  const auto compressed = fable<double>(a, 1e-12);
  qclab::test::expectMatrixNear(encodedBlock(plain, 4), a, 1e-9);
  qclab::test::expectMatrixNear(encodedBlock(compressed, 4), a, 1e-9);
  EXPECT_LE(compressed.circuit.nbObjectsRecursive(),
            plain.circuit.nbObjectsRecursive());
}

TEST(Fable, CompressionShrinksUniformMatrices) {
  // Constant matrices have a single nonzero Walsh coefficient: the
  // multiplexed rotation collapses to one RY and the CNOT scaffold
  // cancels.
  M a(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = C(0.3);
  const auto plain = fable<double>(a);
  const auto compressed = fable<double>(a, 1e-12);
  // Constant matrix -> a single multiplexed rotation survives; only the
  // 6-gate Hadamard/SWAP frame plus one RY remain.
  EXPECT_EQ(compressed.circuit.nbObjectsRecursive(), 7u);
  EXPECT_LT(compressed.circuit.nbObjectsRecursive(),
            plain.circuit.nbObjectsRecursive());
  qclab::test::expectMatrixNear(encodedBlock(compressed, 4), a, 1e-9);
}

TEST(Fable, Validation) {
  EXPECT_THROW(fable<double>(M(3, 3)), InvalidArgumentError);
  EXPECT_THROW(fable<double>(M(2, 3)), InvalidArgumentError);
  M tooBig(2, 2);
  tooBig(0, 0) = C(1.5);
  EXPECT_THROW(fable<double>(tooBig), InvalidArgumentError);
  M complexEntries(2, 2);
  complexEntries(0, 0) = C(0.0, 0.5);
  EXPECT_THROW(fable<double>(complexEntries), InvalidArgumentError);
}

TEST(Fable, BlockEncodingActsOnStates) {
  // Applying the encoding to |0>_a |0>_r |psi>_c and projecting the
  // ancilla+work register onto 0 yields (A/alpha)|psi>.
  random::Rng rng(3);
  M a(2, 2);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) a(i, j) = C(rng.uniform(-0.9, 0.9));
  const auto encoding = fable<double>(a);

  const auto psi = qclab::test::randomState<double>(1, rng);
  std::vector<C> input(8);
  input[0] = psi[0];
  input[1] = psi[1];
  const auto output = encoding.circuit.simulate(input).state(0);
  // Projected (unnormalized) block action.
  std::vector<C> projected = {output[0] * encoding.alpha,
                              output[1] * encoding.alpha};
  const auto expected = a.apply(psi);
  qclab::test::expectStateNear(projected, expected, 1e-10);
}

}  // namespace
}  // namespace qclab::algorithms

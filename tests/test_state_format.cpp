/// \file test_state_format.cpp
/// \brief Unit tests for state pretty-printing, gate counting, and a golden
/// snapshot of the paper's circuit (1) terminal drawing.

#include <gtest/gtest.h>

#include "qclab/io/state_format.hpp"
#include "test_helpers.hpp"

namespace qclab::io {
namespace {

using C = std::complex<double>;
using namespace qclab::qgates;

TEST(FormatAmplitude, PaperStyle) {
  EXPECT_EQ(formatAmplitude(C(0.7071067811, 0.0)), "0.7071 + 0.0000i");
  EXPECT_EQ(formatAmplitude(C(0.0, 0.7071067811)), "0.0000 + 0.7071i");
  EXPECT_EQ(formatAmplitude(C(-0.5, -0.25)), "-0.5000 - 0.2500i");
  EXPECT_EQ(formatAmplitude(C(1.0, 0.0), 2), "1.00 + 0.00i");
}

TEST(FormatStatevector, BellState) {
  const auto bell = qclab::algorithms::bellState<double>();
  const auto text = formatStatevector(bell);
  EXPECT_NE(text.find("0.7071 + 0.0000i |00>"), std::string::npos);
  EXPECT_NE(text.find("0.0000 + 0.0000i |01>"), std::string::npos);
  EXPECT_NE(text.find("0.7071 + 0.0000i |11>"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(FormatStatevector, SkipZeros) {
  const auto bell = qclab::algorithms::bellState<double>();
  StateFormat format;
  format.skipZeros = true;
  const auto text = formatStatevector(bell, format);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_EQ(text.find("|01>"), std::string::npos);
}

TEST(FormatStatevector, NoLabels) {
  StateFormat format;
  format.basisLabels = false;
  const auto text =
      formatStatevector(std::vector<C>{C(1), C(0)}, format);
  EXPECT_EQ(text.find('|'), std::string::npos);
}

TEST(FormatStatevector, RejectsNonPowerOfTwo) {
  EXPECT_THROW(formatStatevector(std::vector<C>(3)), InvalidArgumentError);
}

TEST(GateCounts, MixedCircuit) {
  QCircuit<double> sub(2);
  sub.push_back(Hadamard<double>(0));
  sub.push_back(CX<double>(0, 1));

  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Hadamard<double>(1));
  circuit.push_back(QCircuit<double>(sub));
  circuit.push_back(CZ<double>(0, 2));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Reset<double>(1));
  circuit.push_back(Barrier<double>(0, 2));

  const auto counts = circuit.gateCounts();
  EXPECT_EQ(counts.at("H"), 3u);       // two direct + one nested
  EXPECT_EQ(counts.at("cX"), 1u);      // the nested CNOT
  EXPECT_EQ(counts.at("cZ"), 1u);
  EXPECT_EQ(counts.at("measure"), 1u);
  EXPECT_EQ(counts.at("reset"), 1u);
  EXPECT_EQ(counts.at("barrier"), 1u);
}

TEST(GateCounts, EmptyCircuit) {
  EXPECT_TRUE(QCircuit<double>(2).gateCounts().empty());
}

TEST(GoldenDrawing, PaperCircuitOne) {
  // Pin the exact terminal rendering of the paper's circuit (1).
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  const std::string expected =
      "     ┌─┐       ┌─┐\n"
      "q0: ─┤H├───●───┤M├──\n"
      "     └─┘   │   └─┘\n"
      "          ┌┴┐  ┌─┐\n"
      "q1: ──────┤X├──┤M├──\n"
      "          └─┘  └─┘\n";
  EXPECT_EQ(circuit.draw(), expected);
}

TEST(GoldenDrawing, OracleBlock) {
  QCircuit<double> oracle(2);
  oracle.push_back(CZ<double>(0, 1));
  oracle.asBlock("oracle");
  QCircuit<double> circuit(2);
  circuit.push_back(QCircuit<double>(oracle));
  const std::string expected =
      "     ┌──────┐\n"
      "q0: ─┤oracle├──\n"
      "     │      │\n"
      "     │      │\n"
      "q1: ─┤      ├──\n"
      "     └──────┘\n";
  EXPECT_EQ(circuit.draw(), expected);
}

}  // namespace
}  // namespace qclab::io

/// \file test_amplitude_estimation.cpp
/// \brief Unit tests for QPE-based amplitude estimation.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab::algorithms {
namespace {

using namespace qclab::qgates;

TEST(AmplitudeEstimation, ExactHalfAmplitude) {
  // A = RY(pi/2): a = sin^2(pi/4) = 0.5 -> theta = pi/4 -> phi = 0.25,
  // exact with >= 2 counting bits.
  QCircuit<double> prep(1);
  prep.push_back(RotationY<double>(0, M_PI_2));
  const auto result = amplitudeEstimation<double>(3, prep, {"1"});
  EXPECT_NEAR(result.estimatedAmplitude, 0.5, 1e-9);
  EXPECT_NEAR(result.probability, 0.5, 1e-9);  // two symmetric peaks
}

TEST(AmplitudeEstimation, ZeroAmplitudeIsExact) {
  // A = I: the good state |1> has amplitude 0 -> phi = 0 deterministic.
  QCircuit<double> prep(1);
  prep.push_back(Identity<double>(0));
  const auto result = amplitudeEstimation<double>(3, prep, {"1"});
  EXPECT_EQ(result.bits, "000");
  EXPECT_NEAR(result.estimatedAmplitude, 0.0, 1e-12);
  EXPECT_NEAR(result.probability, 1.0, 1e-10);
}

TEST(AmplitudeEstimation, FullAmplitudeIsExact) {
  // A = X: the good state |1> has amplitude 1 -> theta = pi/2.
  QCircuit<double> prep(1);
  prep.push_back(PauliX<double>(0));
  const auto result = amplitudeEstimation<double>(2, prep, {"1"});
  EXPECT_NEAR(result.estimatedAmplitude, 1.0, 1e-10);
}

TEST(AmplitudeEstimation, MatchesQuantumCountingSetting) {
  // A = H^2, good = {01, 10}: a = 2/4 = 0.5 exactly.
  QCircuit<double> prep(2);
  prep.push_back(Hadamard<double>(0));
  prep.push_back(Hadamard<double>(1));
  const auto result = amplitudeEstimation<double>(3, prep, {"01", "10"});
  EXPECT_NEAR(result.estimatedAmplitude, 0.5, 1e-9);
}

TEST(AmplitudeEstimation, InexactAmplitudeApproximates) {
  // a = sin^2(0.6): not a power-of-two phase; 5 counting bits give a
  // coarse estimate near the truth.
  const double theta = 0.6;
  QCircuit<double> prep(1);
  prep.push_back(RotationY<double>(0, 2.0 * theta));
  const double truth = std::sin(theta) * std::sin(theta);
  const auto result = amplitudeEstimation<double>(5, prep, {"1"});
  EXPECT_NEAR(result.estimatedAmplitude, truth, 0.05);
}

TEST(AmplitudeEstimation, EntangledPreparation) {
  // A = Bell prep, good = {11}: a = 0.5.
  QCircuit<double> prep(2);
  prep.push_back(Hadamard<double>(0));
  prep.push_back(CX<double>(0, 1));
  const auto result = amplitudeEstimation<double>(3, prep, {"11"});
  EXPECT_NEAR(result.estimatedAmplitude, 0.5, 1e-9);
}

TEST(AmplitudeEstimation, Validation) {
  QCircuit<double> prep(1);
  EXPECT_THROW(amplitudeEstimation<double>(0, prep, {"1"}),
               InvalidArgumentError);
  EXPECT_THROW(amplitudeEstimation<double>(2, prep, {}),
               InvalidArgumentError);
  EXPECT_THROW(amplitudeEstimation<double>(2, prep, {"11"}),
               InvalidArgumentError);  // wrong bitstring length
}

class QaeAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(QaeAngleSweep, RecoversPreparedAmplitudeWithinResolution) {
  const double theta = GetParam();
  QCircuit<double> prep(1);
  prep.push_back(RotationY<double>(0, 2.0 * theta));
  const double truth = std::sin(theta) * std::sin(theta);
  const auto result = amplitudeEstimation<double>(6, prep, {"1"});
  // 6-bit phase resolution: |a_est - a| <= ~2 pi / 2^6 in the worst case.
  EXPECT_NEAR(result.estimatedAmplitude, truth, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Angles, QaeAngleSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 1.1,
                                           1.3, 1.5));

}  // namespace
}  // namespace qclab::algorithms

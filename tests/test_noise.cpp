/// \file test_noise.cpp
/// \brief Unit tests for the noise extension: Kraus channels, the density
/// matrix state, and noisy circuit simulation — including the repetition
/// code suppressing bit-flip noise (paper §5.4 made quantitative).

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab::noise {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

std::vector<C> paperV() {
  const double h = 1.0 / std::sqrt(2.0);
  return {C(h, 0.0), C(0.0, h)};
}

TEST(KrausChannel, FactoriesAreTracePreserving) {
  // Construction itself validates sum K^H K = I.
  EXPECT_NO_THROW(KrausChannel<double>::identity());
  EXPECT_NO_THROW(KrausChannel<double>::bitFlip(0.3));
  EXPECT_NO_THROW(KrausChannel<double>::phaseFlip(0.9));
  EXPECT_NO_THROW(KrausChannel<double>::bitPhaseFlip(0.5));
  EXPECT_NO_THROW(KrausChannel<double>::depolarizing(0.7));
  EXPECT_NO_THROW(KrausChannel<double>::amplitudeDamping(0.4));
  EXPECT_NO_THROW(KrausChannel<double>::phaseDamping(0.2));
}

TEST(KrausChannel, Validation) {
  EXPECT_THROW(KrausChannel<double>::bitFlip(-0.1), InvalidArgumentError);
  EXPECT_THROW(KrausChannel<double>::bitFlip(1.1), InvalidArgumentError);
  EXPECT_THROW(KrausChannel<double>({}), InvalidArgumentError);
  // Non-trace-preserving set rejected.
  EXPECT_THROW(KrausChannel<double>({dense::pauliX<double>() * C(0.5)}),
               InvalidArgumentError);
  EXPECT_EQ(KrausChannel<double>::bitFlip(0.1).nbQubits(), 1);
}

TEST(DensityMatrix, PureStateConstruction) {
  const DensityMatrix<double> rho("01");
  EXPECT_EQ(rho.nbQubits(), 2);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-14);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-14);
  EXPECT_NEAR(std::abs(rho.matrix()(1, 1) - C(1)), 0.0, 1e-14);

  const DensityMatrix<double> fromVector(paperV());
  EXPECT_EQ(fromVector.nbQubits(), 1);
  EXPECT_NEAR(fromVector.fidelityWith(paperV()), 1.0, 1e-14);
}

TEST(DensityMatrix, GateConjugationMatchesPureEvolution) {
  // For a pure state, U rho U^H == |U psi><U psi|.
  random::Rng rng(1);
  const auto circuit = qclab::test::randomCircuit<double>(3, 15, 4);
  const auto psi0 = qclab::test::randomState<double>(3, rng);
  DensityMatrix<double> rho(psi0);
  for (const auto& object : circuit) {
    rho.applyGate(static_cast<const qgates::QGate<double>&>(*object));
  }
  const auto psi1 = circuit.simulate(psi0).state(0);
  qclab::test::expectMatrixNear(rho.matrix(), dense::outer(psi1, psi1),
                                1e-11);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-11);
}

TEST(DensityMatrix, BitFlipChannelAction) {
  // rho = |0><0| under bit flip p: diag(1-p, p).
  DensityMatrix<double> rho("0");
  rho.applyChannel(KrausChannel<double>::bitFlip(0.2), {0});
  EXPECT_NEAR(std::real(rho.matrix()(0, 0)), 0.8, 1e-14);
  EXPECT_NEAR(std::real(rho.matrix()(1, 1)), 0.2, 1e-14);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-14);
}

TEST(DensityMatrix, DepolarizingDrivesToMaximallyMixed) {
  DensityMatrix<double> rho("0");
  rho.applyChannel(KrausChannel<double>::depolarizing(1.0), {0});
  auto half = M::identity(2);
  half *= C(0.5);
  qclab::test::expectMatrixNear(rho.matrix(), half, 1e-13);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-13);
}

TEST(DensityMatrix, AmplitudeDampingDecaysToGround) {
  DensityMatrix<double> rho("1");
  rho.applyChannel(KrausChannel<double>::amplitudeDamping(1.0), {0});
  EXPECT_NEAR(std::real(rho.matrix()(0, 0)), 1.0, 1e-14);
  // Partial damping.
  DensityMatrix<double> partial("1");
  partial.applyChannel(KrausChannel<double>::amplitudeDamping(0.3), {0});
  EXPECT_NEAR(std::real(partial.matrix()(1, 1)), 0.7, 1e-14);
}

TEST(DensityMatrix, PhaseDampingKillsCoherence) {
  const double h = 1.0 / std::sqrt(2.0);
  DensityMatrix<double> rho(std::vector<C>{C(h), C(h)});
  rho.applyChannel(KrausChannel<double>::phaseDamping(1.0), {0});
  EXPECT_NEAR(std::abs(rho.matrix()(0, 1)), 0.0, 1e-14);
  EXPECT_NEAR(std::real(rho.matrix()(0, 0)), 0.5, 1e-14);
}

TEST(DensityMatrix, ChannelOnOneQubitOfMany) {
  // Bit flip on qubit 1 of |00>: |00> -> (1-p)|00> + p|01>.
  DensityMatrix<double> rho("00");
  rho.applyChannel(KrausChannel<double>::bitFlip(0.25), {1});
  EXPECT_NEAR(std::real(rho.matrix()(0, 0)), 0.75, 1e-14);
  EXPECT_NEAR(std::real(rho.matrix()(1, 1)), 0.25, 1e-14);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-14);
}

TEST(DensityMatrix, DephaseMatchesMeasurementStatistics) {
  const double h = 1.0 / std::sqrt(2.0);
  DensityMatrix<double> rho(std::vector<C>{C(h), C(h)});
  rho.dephase(0);
  EXPECT_NEAR(std::abs(rho.matrix()(0, 1)), 0.0, 1e-14);
  EXPECT_NEAR(rho.probability0(0), 0.5, 1e-14);
}

TEST(DensityMatrix, CollapseAndReset) {
  const auto bell = algorithms::bellState<double>();
  DensityMatrix<double> rho(bell);
  const double p = rho.collapse(0, 1);
  EXPECT_NEAR(p, 0.5, 1e-14);
  // Collapsed to |11>.
  EXPECT_NEAR(std::real(rho.matrix()(3, 3)), 1.0, 1e-13);

  DensityMatrix<double> toReset(bell);
  toReset.reset(0);
  // Qubit 0 in |0>; qubit 1 stays mixed.
  EXPECT_NEAR(toReset.probability0(0), 1.0, 1e-13);
  EXPECT_NEAR(toReset.probability0(1), 0.5, 1e-13);
  EXPECT_NEAR(toReset.trace(), 1.0, 1e-13);
}

TEST(NoiselessDensitySimulation, MatchesStateVector) {
  auto circuit = qclab::test::randomCircuit<double>(3, 12, 9);
  const auto rho = simulateDensity(circuit, "000");
  const auto psi = circuit.simulate("000").state(0);
  qclab::test::expectMatrixNear(rho.matrix(), dense::outer(psi, psi), 1e-11);
}

TEST(NoiselessDensitySimulation, MeasurementDephasesBranches) {
  // H + measure: the density matrix becomes the classical mixture
  // (|0><0| + |1><1|)/2.
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  const auto rho = simulateDensity(circuit, "0");
  auto half = M::identity(2);
  half *= C(0.5);
  qclab::test::expectMatrixNear(rho.matrix(), half, 1e-13);
}

TEST(NoiselessDensitySimulation, XBasisMeasurementPreservesPlus) {
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0, 'x'));
  const auto rho = simulateDensity(circuit, "0");
  // |+> is an X eigenstate: the measurement leaves it pure.
  EXPECT_NEAR(rho.purity(), 1.0, 1e-13);
}

TEST(NoisySimulation, GateNoiseReducesPurity) {
  QCircuit<double> circuit(2);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(qgates::CX<double>(0, 1));
  const auto noisy = simulateDensity(circuit, "00",
                                     NoiseModel<double>::depolarizing(0.05));
  EXPECT_LT(noisy.purity(), 1.0 - 1e-4);
  EXPECT_NEAR(noisy.trace(), 1.0, 1e-12);
  // Fidelity with the ideal Bell state drops but stays dominant.
  const double fidelity = noisy.fidelityWith(algorithms::bellState<double>());
  EXPECT_GT(fidelity, 0.8);
  EXPECT_LT(fidelity, 1.0);
}

/// The headline QEC property: encoding + syndrome correction suppresses
/// bit-flip noise from O(p) to O(p^2).
TEST(NoisySimulation, RepetitionCodeSuppressesBitFlips) {
  const auto v = paperV();
  const double p = 0.05;
  const auto channel = KrausChannel<double>::bitFlip(p);

  // Unprotected qubit: fidelity 1 - p.
  DensityMatrix<double> bare(v);
  bare.applyChannel(channel, {0});
  EXPECT_NEAR(bare.fidelityWith(v), 1.0 - p, 1e-12);

  // Encoded qubit: noise on each data qubit, then syndrome + correction.
  DensityMatrix<double> encoded(dense::kron(v, basisState<double>("0000")));
  const auto encoder = algorithms::repetitionEncoder<double>(5);
  simulateDensity(encoder, encoded);
  for (int q = 0; q < 3; ++q) encoded.applyChannel(channel, {q});
  const auto corrector = algorithms::repetitionSyndromeAndCorrect<double>();
  simulateDensity(corrector, encoded);

  // Logical fidelity: data qubits back in alpha|000> + beta|111|, ancillas
  // traced out implicitly by comparing against each syndrome... simplest:
  // fidelity of the reduced data state with the logical state.
  const auto dataRho =
      density::partialTrace(encoded.matrix(), 5, {3, 4});
  std::vector<C> logical(8);
  logical[0] = v[0];
  logical[7] = v[1];
  const double logicalFidelity = density::fidelity(logical, dataRho);

  // 1 - F_logical ~ 3p^2 - 2p^3 << p.
  const double expectedError = 3 * p * p - 2 * p * p * p;
  EXPECT_NEAR(1.0 - logicalFidelity, expectedError, 1e-10);
  EXPECT_LT(1.0 - logicalFidelity, p / 2);
}

TEST(NoisySimulation, RepetitionCodeBreaksAboveHalf) {
  // At p = 0.5 the code cannot help: logical error = 0.5.
  const auto v = paperV();
  const auto channel = KrausChannel<double>::bitFlip(0.5);
  DensityMatrix<double> encoded(dense::kron(v, basisState<double>("0000")));
  simulateDensity(algorithms::repetitionEncoder<double>(5), encoded);
  for (int q = 0; q < 3; ++q) encoded.applyChannel(channel, {q});
  simulateDensity(algorithms::repetitionSyndromeAndCorrect<double>(),
                  encoded);
  const auto dataRho = density::partialTrace(encoded.matrix(), 5, {3, 4});
  std::vector<C> logical(8);
  logical[0] = v[0];
  logical[7] = v[1];
  EXPECT_NEAR(density::fidelity(logical, dataRho), 0.5, 1e-10);
}

class ChannelSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChannelSweep, AllChannelsPreserveTraceOnRandomStates) {
  const double p = GetParam();
  random::Rng rng(7);
  const auto psi = qclab::test::randomState<double>(2, rng);
  for (const auto& channel :
       {KrausChannel<double>::bitFlip(p), KrausChannel<double>::phaseFlip(p),
        KrausChannel<double>::bitPhaseFlip(p),
        KrausChannel<double>::depolarizing(p),
        KrausChannel<double>::amplitudeDamping(p),
        KrausChannel<double>::phaseDamping(p)}) {
    DensityMatrix<double> rho(psi);
    rho.applyChannel(channel, {1});
    EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
    EXPECT_TRUE(density::isDensityMatrix(rho.matrix(), 1e-10));
    EXPECT_LE(rho.purity(), 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, ChannelSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.9, 1.0));

TEST(DensityMatrix, ProbabilitiesOverQubits) {
  const auto bell = algorithms::bellState<double>();
  const DensityMatrix<double> rho(bell);
  const auto joint = rho.probabilities({0, 1});
  ASSERT_EQ(joint.size(), 4u);
  EXPECT_NEAR(joint[0], 0.5, 1e-14);
  EXPECT_NEAR(joint[3], 0.5, 1e-14);
  EXPECT_NEAR(joint[1], 0.0, 1e-14);
  const auto single = rho.probabilities({1});
  EXPECT_NEAR(single[0], 0.5, 1e-14);
}

TEST(KrausChannel, ReadoutConfusionMatrix) {
  // readout(p01, p10) implements the classical confusion matrix on
  // diagonal states: |0> reads 1 with probability p01, |1> reads 0 with
  // probability p10.
  const auto channel = KrausChannel<double>::readout(0.1, 0.3);
  EXPECT_EQ(channel.nbQubits(), 1);

  DensityMatrix<double> ground("0");
  ground.applyChannel(channel, {0});
  auto probs = ground.probabilities({0});
  EXPECT_NEAR(probs[0], 0.9, 1e-12);
  EXPECT_NEAR(probs[1], 0.1, 1e-12);

  DensityMatrix<double> excited("1");
  excited.applyChannel(channel, {0});
  probs = excited.probabilities({0});
  EXPECT_NEAR(probs[0], 0.3, 1e-12);
  EXPECT_NEAR(probs[1], 0.7, 1e-12);
}

TEST(KrausChannel, ReadoutSymmetricAndValidation) {
  // Single-argument overload is the symmetric case.
  DensityMatrix<double> rho("0");
  rho.applyChannel(KrausChannel<double>::readout(0.25), {0});
  const auto probs = rho.probabilities({0});
  EXPECT_NEAR(probs[1], 0.25, 1e-12);

  EXPECT_THROW(KrausChannel<double>::readout(-0.1, 0.5), InvalidArgumentError);
  EXPECT_THROW(KrausChannel<double>::readout(0.5, 1.1), InvalidArgumentError);
  EXPECT_NO_THROW(KrausChannel<double>::readout(0.0, 1.0));
}

TEST(NoisySimulation, ZBasisReadoutNoiseCorruptsRecordedOutcome) {
  // |1> measured in the computational basis with readout(0, p10) must
  // report 0 with probability p10.
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::PauliX<double>(0));
  circuit.push_back(Measurement<double>(0));

  NoiseModel<double> model;
  model.measurementNoise = KrausChannel<double>::readout(0.0, 0.25);

  const auto rho = simulateDensity(circuit, "0", model);
  const auto probs = rho.probabilities({0});
  EXPECT_NEAR(probs[0], 0.25, 1e-12);
  EXPECT_NEAR(probs[1], 0.75, 1e-12);
}

TEST(NoisySimulation, MeasurementNoiseActsInMeasurementBasis) {
  // Regression for the ordering bug: measurementNoise must act AFTER the
  // basis change V^H, i.e. in the measurement frame.  For an X-basis
  // measurement of |+> with bit-flip readout noise, the recorded
  // distribution is {1-p, p}; with the old (pre-V^H) ordering the
  // bit-flip channel commuted with the X measurement and the corruption
  // silently vanished.
  QCircuit<double> circuit(1);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0, 'x'));
  circuit.push_back(qgates::Hadamard<double>(0));  // map X frame to Z frame

  NoiseModel<double> model;
  model.measurementNoise = KrausChannel<double>::bitFlip(0.2);

  const auto rho = simulateDensity(circuit, "0", model);
  const auto probs = rho.probabilities({0});
  EXPECT_NEAR(probs[0], 0.8, 1e-12);
  EXPECT_NEAR(probs[1], 0.2, 1e-12);
}

TEST(NoisySimulation, GateNoiseAppliedOncePerQubitOfMultiQubitGate) {
  // A two-qubit gate under gate noise must trigger exactly one channel
  // application per distinct qubit it touches.
  obs::metrics().reset();
  QCircuit<double> circuit(2);
  circuit.push_back(qgates::CX<double>(0, 1));

  NoiseModel<double> model;
  model.gateNoise = KrausChannel<double>::depolarizing(0.1);
  const auto rho = simulateDensity(circuit, "00", model);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  if (obs::kEnabled) {
    EXPECT_EQ(obs::metrics().noiseChannelApplications(), 2u);
  }

  // A gate can never list the same qubit twice, so "noise applied twice
  // to one qubit" cannot arise from circuit construction.
  EXPECT_THROW(qgates::CX<double>(1, 1), InvalidArgumentError);
}

}  // namespace
}  // namespace qclab::noise

/// \file test_obs.cpp
/// \brief Tests of the qclab::obs observability layer: counter totals vs
/// circuit gate counts, kernel-path tagging on both backends, Chrome
/// trace_event export, report JSON shape, and no-op behaviour of the
/// QCLAB_OBS_DISABLED build (which compiles this same file).

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "qclab/obs/benchjson.hpp"
#include "qclab/qclab.hpp"

namespace {

using T = double;
using qclab::sim::KernelPath;

// ---- minimal JSON syntax checker -------------------------------------
// Validates JSON well-formedness (objects, arrays, strings, numbers,
// literals) so the exported trace/report files are guaranteed loadable.

class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : text_(std::move(text)) {}

  bool valid() {
    pos_ = 0;
    skipSpace();
    if (!value()) return false;
    skipSpace();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipSpace();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipSpace();
      if (!string()) return false;
      skipSpace();
      if (peek() != ':') return false;
      ++pos_;
      skipSpace();
      if (!value()) return false;
      skipSpace();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipSpace();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipSpace();
      if (!value()) return false;
      skipSpace();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }

  bool number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > begin;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

/// gateCounts() restricted to actual gates (the obs layer never sees
/// measurements, resets, or barriers).
std::map<std::string, std::size_t> gateOnlyCounts(
    const qclab::QCircuit<T>& circuit) {
  auto counts = circuit.gateCounts();
  counts.erase("measure");
  counts.erase("reset");
  counts.erase("barrier");
  return counts;
}

// ---- kernel-path classification (works in all builds) -----------------

TEST(ObsKernelPath, ClassificationPerGateClass) {
  const qclab::sim::KernelBackend<T> kernel;
  const qclab::sim::SparseKronBackend<T> sparse;

  const qclab::qgates::SWAP<T> swap(0, 1);
  const qclab::qgates::CX<T> cnot(0, 1);
  const qclab::qgates::PauliZ<T> pauliZ(0);
  const qclab::qgates::RotationZ<T> rz(0, 0.3);
  const qclab::qgates::Hadamard<T> hadamard(0);
  const qclab::qgates::RotationZZ<T> rzz(0, 1, 0.7);
  const qclab::qgates::iSWAP<T> iswap(0, 1);
  const qclab::qgates::CZ<T> cz(0, 1);
  const qclab::qgates::CPhase<T> cphase(0, 1, 0.5);
  const qclab::qgates::CRotationZ<T> crz(0, 1, 0.5);
  const qclab::qgates::CRotationX<T> crx(0, 1, 0.5);
  const qclab::qgates::MCZ<T> mcz({0, 1}, 2);

  EXPECT_EQ(kernel.dispatchPath(swap), KernelPath::kSwap);
  EXPECT_EQ(kernel.dispatchPath(cnot), KernelPath::kControlled1);
  EXPECT_EQ(kernel.dispatchPath(pauliZ), KernelPath::kDiagonal1);
  EXPECT_EQ(kernel.dispatchPath(rz), KernelPath::kDiagonal1);
  EXPECT_EQ(kernel.dispatchPath(hadamard), KernelPath::kDense1);
  EXPECT_EQ(kernel.dispatchPath(rzz), KernelPath::kDiagonalK);
  EXPECT_EQ(kernel.dispatchPath(iswap), KernelPath::kDenseK);

  // Controlled gates with a diagonal target take the controlled-diagonal
  // fast path; a non-diagonal target (CRX) stays on controlled1.
  EXPECT_EQ(kernel.dispatchPath(cz), KernelPath::kControlledDiagonal1);
  EXPECT_EQ(kernel.dispatchPath(cphase), KernelPath::kControlledDiagonal1);
  EXPECT_EQ(kernel.dispatchPath(crz), KernelPath::kControlledDiagonal1);
  EXPECT_EQ(kernel.dispatchPath(mcz), KernelPath::kControlledDiagonal1);
  EXPECT_EQ(kernel.dispatchPath(crx), KernelPath::kControlled1);

  EXPECT_EQ(sparse.dispatchPath(swap), KernelPath::kSparseKron);
  EXPECT_EQ(sparse.dispatchPath(hadamard), KernelPath::kSparseKron);

  // The decorator reports the path of whatever it wraps.
  const qclab::obs::InstrumentedBackend<T> overKernel(kernel);
  const qclab::obs::InstrumentedBackend<T> overSparse(sparse);
  EXPECT_EQ(overKernel.dispatchPath(cnot), KernelPath::kControlled1);
  EXPECT_EQ(overKernel.dispatchPath(swap), KernelPath::kSwap);
  EXPECT_EQ(overSparse.dispatchPath(cnot), KernelPath::kSparseKron);
}

TEST(ObsKernelPath, NamesAreStable) {
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kSwap), "swap");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kControlled1),
               "controlled1");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kDiagonal1),
               "diagonal1");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kDense1), "dense1");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kSparseKron),
               "sparse-kron");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kControlledDiagonal1),
               "controlled-diagonal1");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kFusedDenseK),
               "fused-k");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kFusedDiagonalK),
               "fused-diagonal-k");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kSimdDense1),
               "simd-dense1");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kSimdDiagonal1),
               "simd-diagonal1");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kSimdDenseK),
               "simd-dense-k");
  EXPECT_STREQ(qclab::sim::kernelPathName(KernelPath::kBlocked), "blocked");
}

// ---- instrumented simulation equals plain simulation (all builds) -----

TEST(ObsInstrumented, SimulatesIdenticallyToBareBackend) {
  const auto circuit = qclab::algorithms::grover<T>(
      "111", qclab::algorithms::groverIterations(3));
  const qclab::sim::KernelBackend<T> bare;
  const qclab::obs::InstrumentedBackend<T> instrumented(bare);

  const auto plain = circuit.simulate("000", bare);
  const auto metered = circuit.simulate("000", instrumented);

  ASSERT_EQ(plain.nbBranches(), metered.nbBranches());
  for (std::size_t b = 0; b < plain.nbBranches(); ++b) {
    EXPECT_EQ(plain.result(b), metered.result(b));
    EXPECT_EQ(plain.probability(b), metered.probability(b));
    ASSERT_EQ(plain.state(b).size(), metered.state(b).size());
    for (std::size_t i = 0; i < plain.state(b).size(); ++i) {
      // Bit-identical: the decorator must not alter the arithmetic.
      EXPECT_EQ(plain.state(b)[i], metered.state(b)[i]);
    }
  }
}

// ---- build info (all builds) ------------------------------------------

TEST(ObsBuildInfo, SelfDescribing) {
  const std::string info = qclab::buildInfo();
  EXPECT_NE(info.find("qclab 1.0.0"), std::string::npos);
  EXPECT_NE(info.find(qclab::builtWithOpenMP() ? "openmp=on" : "openmp=off"),
            std::string::npos);
  EXPECT_NE(info.find(qclab::builtWithObs() ? "obs=on" : "obs=off"),
            std::string::npos);
  EXPECT_NE(info.find(qclab::builtWithSimd() ? "simd=on" : "simd=off"),
            std::string::npos);
  EXPECT_NE(info.find("scalars=float,double"), std::string::npos);
  EXPECT_EQ(qclab::builtWithObs(), qclab::obs::kEnabled);
}

// ---- report JSON shape (all builds) -----------------------------------

TEST(ObsReport, JsonIsWellFormedAndStamped) {
  qclab::obs::metrics().reset();
  qclab::obs::Report report("unit_test");
  report.add("kernel/h/n=4", 123.5, "ns/op");
  const std::string json = report.json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"schema\": \"qclab-obs-v4\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find(qclab::obs::kEnabled ? "\"obs\": true"
                                           : "\"obs\": false"),
            std::string::npos);
  EXPECT_NE(json.find("kernel/h/n=4"), std::string::npos);
  // v2 sections are present in every build (empty objects when disabled).
  EXPECT_NE(json.find("\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_touched_by_path\""), std::string::npos);
  // v3 sections likewise: perf counters, roofline, and pipeline stages
  // appear in every build (carrying availability markers when empty).
  EXPECT_NE(json.find("\"perf\""), std::string::npos);
  EXPECT_NE(json.find("\"roofline\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  // v4 sections: sentinel, flight recorder, and profiler totals appear in
  // every build (all zeros / disabled markers when inert).
  EXPECT_NE(json.find("\"sentinel\""), std::string::npos);
  EXPECT_NE(json.find("\"flight\""), std::string::npos);
  EXPECT_NE(json.find("\"profiler\""), std::string::npos);

  const std::string text = report.text();
  EXPECT_NE(text.find("unit_test"), std::string::npos);
  EXPECT_NE(text.find("gate applications"), std::string::npos);
}

// ---- jsonEscape (all builds) ------------------------------------------

/// Round-trips `raw` through jsonEscape and the benchjson parser: the
/// escaped form must be a valid JSON string that decodes back to `raw`.
std::string escapeRoundTrip(const std::string& raw) {
  const std::string wrapped = "\"" + qclab::obs::jsonEscape(raw) + "\"";
  const auto parsed = qclab::obs::benchjson::parseJson(wrapped);
  EXPECT_TRUE(parsed.isString()) << wrapped;
  return parsed.string;
}

TEST(ObsJsonEscape, AllControlCharactersEscape) {
  for (int c = 0x00; c < 0x20; ++c) {
    const std::string raw = std::string("a") +
                            static_cast<char>(c) + std::string("b");
    const std::string escaped = qclab::obs::jsonEscape(raw);
    // No raw control byte may survive into the JSON text.
    for (const char byte : escaped) {
      EXPECT_GE(static_cast<unsigned char>(byte), 0x20u)
          << "control byte 0x" << std::hex << c << " leaked unescaped";
    }
    EXPECT_EQ(escapeRoundTrip(raw), raw) << "control byte 0x" << std::hex
                                         << c;
  }
}

TEST(ObsJsonEscape, NamedEscapesAndQuotes) {
  EXPECT_EQ(qclab::obs::jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(qclab::obs::jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(qclab::obs::jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(qclab::obs::jsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(qclab::obs::jsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(escapeRoundTrip("say \"hi\" \\ bye"), "say \"hi\" \\ bye");
}

TEST(ObsJsonEscape, Utf8PassesThroughUntouched) {
  // Multi-byte UTF-8 (Greek, CJK, an emoji) must not be escaped or
  // mangled — bytes >= 0x80 pass through verbatim.
  const std::string utf8 = "ψ⟩ 量子 🧲";
  EXPECT_EQ(qclab::obs::jsonEscape(utf8), utf8);
  EXPECT_EQ(escapeRoundTrip(utf8), utf8);
}

#ifndef QCLAB_OBS_DISABLED

// ---- counters (enabled builds only) -----------------------------------

TEST(ObsMetrics, CounterTotalsMatchGateCounts) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();

  // A known mixed circuit: 2x H, CX, SWAP, RZ, RZZ, iSWAP.
  qclab::QCircuit<T> circuit(3);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::Hadamard<T>(1));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  circuit.push_back(qclab::qgates::SWAP<T>(1, 2));
  circuit.push_back(qclab::qgates::RotationZ<T>(2, 0.4));
  circuit.push_back(qclab::qgates::RotationZZ<T>(0, 2, 0.7));
  circuit.push_back(qclab::qgates::iSWAP<T>(0, 1));

  const qclab::obs::InstrumentedBackend<T> backend;
  circuit.simulate("000", backend);

  const auto expected = gateOnlyCounts(circuit);
  std::size_t expectedTotal = 0;
  for (const auto& [kind, count] : expected) expectedTotal += count;

  const auto observed = metrics.gateKinds();
  EXPECT_EQ(observed.size(), expected.size());
  for (const auto& [kind, count] : expected) {
    ASSERT_TRUE(observed.count(kind)) << "missing kind " << kind;
    EXPECT_EQ(observed.at(kind), count) << "kind " << kind;
  }
  EXPECT_EQ(metrics.gateApplications(), expectedTotal);

  // Path split: H,H dense1; CX controlled1; SWAP swap; RZ diagonal1;
  // RZZ diagonal-k; iSWAP dense-k.  When the SIMD tier is active the
  // dense1/diagonal1/2-qubit-dense applications are counted under the
  // kSimd* variants (dispatch is unchanged — only the attribution moves).
  EXPECT_EQ(metrics.gateApplications(
                qclab::sim::simdCountedPath(KernelPath::kDense1, 1)),
            2u);
  EXPECT_EQ(metrics.gateApplications(KernelPath::kControlled1), 1u);
  EXPECT_EQ(metrics.gateApplications(KernelPath::kSwap), 1u);
  EXPECT_EQ(metrics.gateApplications(
                qclab::sim::simdCountedPath(KernelPath::kDiagonal1, 1)),
            1u);
  EXPECT_EQ(metrics.gateApplications(KernelPath::kDiagonalK), 1u);
  EXPECT_EQ(metrics.gateApplications(
                qclab::sim::simdCountedPath(KernelPath::kDenseK, 2)),
            1u);
  EXPECT_GT(metrics.bytesTouched(), 0u);
  EXPECT_EQ(metrics.circuitSimulations(), 1u);
}

TEST(ObsMetrics, ControlledDiagonalPathCounted) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();

  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::CZ<T>(0, 1));
  circuit.push_back(qclab::qgates::CPhase<T>(0, 1, 0.4));
  circuit.push_back(qclab::qgates::CRotationZ<T>(0, 1, 0.3));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));

  const qclab::obs::InstrumentedBackend<T> backend;
  circuit.simulate("00", backend);

  EXPECT_EQ(metrics.gateApplications(KernelPath::kControlledDiagonal1), 3u);
  EXPECT_EQ(metrics.gateApplications(KernelPath::kControlled1), 1u);
  EXPECT_EQ(metrics.gateApplications(), 4u);
}

TEST(ObsMetrics, FusionCountersTrackPlanApplications) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();

  // Four single-qubit gates on two qubits fuse into one dense block.
  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::Hadamard<T>(1));
  circuit.push_back(qclab::qgates::TGate<T>(0));
  circuit.push_back(qclab::qgates::PauliX<T>(1));

  qclab::SimulateOptions options;
  options.fusion = true;
  circuit.simulate("00", options);

  EXPECT_EQ(metrics.fusionGatesIn(), 4u);
  EXPECT_EQ(metrics.fusionBlocks(), 1u);
  EXPECT_EQ(metrics.fusionSweepsSaved(), 3u);
  EXPECT_EQ(metrics.gateApplications(KernelPath::kFusedDenseK), 1u);
  // The fused sweep is a bare-kernel call: no per-kind histogram entries.
  EXPECT_TRUE(metrics.gateKinds().empty());

  // A diagonal-only run keeps a diagonal block.
  metrics.reset();
  qclab::QCircuit<T> diagonalRun(2);
  diagonalRun.push_back(qclab::qgates::RotationZ<T>(0, 0.3));
  diagonalRun.push_back(qclab::qgates::CZ<T>(0, 1));
  diagonalRun.push_back(qclab::qgates::PauliZ<T>(1));
  diagonalRun.simulate("00", options);

  EXPECT_EQ(metrics.fusionGatesIn(), 3u);
  EXPECT_EQ(metrics.fusionBlocks(), 1u);
  EXPECT_EQ(metrics.gateApplications(KernelPath::kFusedDiagonalK), 1u);

  // The counters surface in the report JSON.
  const std::string json = qclab::obs::Report("fusion_test").json();
  EXPECT_NE(json.find("\"fusion_gates_in\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"fusion_blocks_out\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"fusion_sweeps_saved\": 2"), std::string::npos);
}

TEST(ObsMetrics, GroverCountsMatchAcrossNestedBlocks) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();

  // Grover uses nested oracle/diffuser sub-circuits: the dynamic per-kind
  // counts must still equal the recursive static counts.
  const auto circuit = qclab::algorithms::grover<T>(
      "1111", qclab::algorithms::groverIterations(4));
  const qclab::obs::InstrumentedBackend<T> backend;
  circuit.simulate("0000", backend);

  EXPECT_EQ(metrics.gateKinds(), gateOnlyCounts(circuit));
}

TEST(ObsMetrics, SparseBackendCountsSparseKronPath) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();

  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));

  const qclab::sim::SparseKronBackend<T> sparse;
  const qclab::obs::InstrumentedBackend<T> backend(sparse);
  circuit.simulate("00", backend);

  EXPECT_EQ(metrics.gateApplications(KernelPath::kSparseKron), 2u);
  EXPECT_EQ(metrics.gateApplications(), 2u);
}

TEST(ObsMetrics, BranchSpawnAndPruneCounters) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();

  // Bell pair, both qubits measured: the first measurement forks (one
  // spawn), the second is deterministic per branch (two prunes).
  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  circuit.push_back(qclab::Measurement<T>(0));
  circuit.push_back(qclab::Measurement<T>(1));
  circuit.simulate("00");

  EXPECT_EQ(metrics.branchSpawns(), 1u);
  EXPECT_EQ(metrics.branchPrunes(), 2u);
}

TEST(ObsMetrics, ShotsSampledCounter) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();

  qclab::QCircuit<T> circuit(1);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::Measurement<T>(0));
  const auto simulation = circuit.simulate("0");
  simulation.counts(1000, /*seed=*/3);
  simulation.countsMap(500, /*seed=*/3);

  EXPECT_EQ(metrics.shotsSampled(), 1500u);
}

TEST(ObsMetrics, NoiseChannelCounter) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();

  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  const auto model = qclab::noise::NoiseModel<T>::depolarizing(T(0.01));
  qclab::noise::simulateDensity(circuit, "00", model);

  // H touches 1 qubit, CX touches 2 — one channel application each.
  EXPECT_EQ(metrics.noiseChannelApplications(), 3u);
}

// ---- tracing (enabled builds only) ------------------------------------

TEST(ObsTrace, ChromeTraceParsesAndNests) {
  auto& tracer = qclab::obs::tracer();
  qclab::obs::metrics().reset();
  tracer.clear();
  tracer.enable();

  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  const qclab::obs::InstrumentedBackend<T> backend;
  circuit.simulate("00", backend);
  tracer.disable();

  // 2 gate spans + 1 circuit span + the "state/alloc" and "execute"
  // pipeline-stage spans.
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 5u);

  const qclab::obs::TraceEvent* simulateSpan = nullptr;
  const qclab::obs::TraceEvent* executeSpan = nullptr;
  const qclab::obs::TraceEvent* allocSpan = nullptr;
  std::vector<const qclab::obs::TraceEvent*> gateSpans;
  for (const auto& event : events) {
    if (std::string(event.category) == "circuit") {
      simulateSpan = &event;
    } else if (std::string(event.category) == "gate") {
      gateSpans.push_back(&event);
    } else if (event.name == "execute") {
      executeSpan = &event;
    } else if (event.name == "state/alloc") {
      allocSpan = &event;
    }
  }
  ASSERT_NE(simulateSpan, nullptr);
  EXPECT_EQ(simulateSpan->name, "simulate(n=2)");
  ASSERT_EQ(gateSpans.size(), 2u);
  EXPECT_EQ(gateSpans[0]->name, "H");
  EXPECT_EQ(gateSpans[1]->name, "cX");

  // ScopedSpan hierarchy: simulate is a root span, execute nests inside
  // it (parent name + depth recorded), state allocation precedes both.
  EXPECT_EQ(simulateSpan->parent, "");
  EXPECT_EQ(simulateSpan->depth, 0);
  ASSERT_NE(executeSpan, nullptr);
  EXPECT_EQ(executeSpan->parent, "simulate(n=2)");
  EXPECT_EQ(executeSpan->depth, 1);
  ASSERT_NE(allocSpan, nullptr);
  EXPECT_EQ(allocSpan->parent, "");

  // Gate spans nest inside the circuit span.
  for (const auto* gate : gateSpans) {
    EXPECT_GE(gate->startNs, simulateSpan->startNs);
    EXPECT_LE(gate->startNs + gate->durationNs,
              simulateSpan->startNs + simulateSpan->durationNs);
  }

  const std::string json = tracer.chromeTraceJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("simulate(n=2)"), std::string::npos);
  // Ring-buffer accounting and span hierarchy surface in the export.
  EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
  EXPECT_NE(json.find("\"retainedEvents\":5"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"parent\":\"simulate(n=2)\",\"depth\":1}"),
            std::string::npos);
  tracer.clear();
}

TEST(ObsTrace, RingBufferEvictsOldestAndCountsDropped) {
  qclab::obs::Tracer tracer(4);
  tracer.enable();
  for (int i = 0; i < 10; ++i) {
    tracer.record("span" + std::to_string(i), "test",
                  static_cast<std::uint64_t>(i), 1);
  }
  EXPECT_EQ(tracer.nbEvents(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "span6");  // oldest retained
  EXPECT_EQ(events.back().name, "span9");   // newest

  // The eviction count is part of the export, so a truncated trace is
  // detectable from the artifact alone.
  const std::string json = tracer.chromeTraceJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"droppedEvents\":6"), std::string::npos);
  EXPECT_NE(json.find("\"retainedEvents\":4"), std::string::npos);
  EXPECT_EQ(json.find("span0"), std::string::npos);  // evicted
  EXPECT_NE(json.find("span6"), std::string::npos);  // retained

  // clear() resets the eviction count along with the events.
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_NE(tracer.chromeTraceJson().find("\"droppedEvents\":0"),
            std::string::npos);
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  qclab::obs::Tracer tracer;  // enabled() defaults to false
  tracer.record("ignored", "test", 0, 1);
  EXPECT_EQ(tracer.nbEvents(), 0u);
  JsonChecker checker(tracer.chromeTraceJson());
  EXPECT_TRUE(checker.valid());
}

// ---- pipeline stages (enabled builds only) ----------------------------

TEST(ObsStages, PipelineStagesAccumulateWithTracerOff) {
  qclab::obs::resetAll();
  ASSERT_FALSE(qclab::obs::tracer().enabled());

  const auto circuit = qclab::io::parseQasm<T>(
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[2];\n"
      "creg c[2];\n"
      "h q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\n");
  const auto optimized = qclab::transpile::optimize(circuit);
  const auto simulation = optimized.simulate("00");
  simulation.counts(64, /*seed=*/7);

  const auto stages = qclab::obs::stageStats().snapshot();
  for (const char* stage : {"qasm/parse", "transpile/optimize",
                            "state/alloc", "simulate", "execute", "measure",
                            "sample/counts"}) {
    ASSERT_TRUE(stages.count(stage)) << "missing stage " << stage;
    EXPECT_GE(stages.at(stage).count, 1u) << stage;
  }
  // The display name of the simulate span carries the qubit count, the
  // stage key must not.
  EXPECT_EQ(stages.count("simulate(n=2)"), 0u);

  // The stage breakdown surfaces in the report (JSON and text).
  const std::string json = qclab::obs::Report("stage_test").json();
  EXPECT_NE(json.find("\"qasm/parse\""), std::string::npos);
  EXPECT_NE(json.find("\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_ns\""), std::string::npos);
  const std::string text = qclab::obs::Report("stage_test").text();
  EXPECT_NE(text.find("stage"), std::string::npos);
  qclab::obs::resetAll();
}

TEST(ObsStages, ScopedSpanTracksParentAndDepth) {
  qclab::obs::resetAll();
  auto& tracer = qclab::obs::tracer();
  tracer.enable();
  {
    const qclab::obs::ScopedSpan outer("outer", "test");
    {
      const qclab::obs::ScopedSpan inner("inner", "test");
      const qclab::obs::ScopedSpan innermost("innermost", "test", "leaf");
    }
  }
  tracer.disable();

  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);  // completion order: innermost, inner, outer
  EXPECT_EQ(events[0].name, "innermost");
  EXPECT_EQ(events[0].parent, "inner");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].parent, "outer");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].parent, "");
  EXPECT_EQ(events[2].depth, 0);

  // Stage aggregation keys on the explicit stageKey when given.
  const auto stages = qclab::obs::stageStats().snapshot();
  EXPECT_TRUE(stages.count("outer"));
  EXPECT_TRUE(stages.count("inner"));
  EXPECT_TRUE(stages.count("leaf"));
  EXPECT_EQ(stages.count("innermost"), 0u);
  qclab::obs::resetAll();
}

// ---- perf counters (enabled builds only) ------------------------------

TEST(ObsPerf, CapabilityIsSelfDescribing) {
  const auto& capability = qclab::obs::perfCapability();
  // Either some counter tier opened, or the reason says why not (e.g. no
  // vPMU in a VM, perf_event_paranoid); both are valid environments.
  if (!capability.any()) {
    EXPECT_FALSE(capability.reason.empty());
  }
  // LLC and stalled-cycle counters require the hardware tier.
  if (capability.llc) EXPECT_TRUE(capability.hardware);
  if (capability.stalled) EXPECT_TRUE(capability.hardware);
}

TEST(ObsPerf, RegistryOffByDefaultAndRecordsWhenEnabled) {
  auto& registry = qclab::obs::perfRegistry();
  registry.reset();
  registry.disable();

  {
    const qclab::obs::PerfScope scope(KernelPath::kDense1);
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  EXPECT_TRUE(registry.counts(KernelPath::kDense1).empty())
      << "disabled registry must not record";

  registry.enable();
  EXPECT_TRUE(registry.enabled());
  {
    const qclab::obs::PerfScope scope(KernelPath::kDense1);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  }
  registry.disable();

  const auto counts = registry.counts(KernelPath::kDense1);
  if (qclab::obs::perfCapability().any()) {
    EXPECT_EQ(counts.samples, 1u);
    // The software tier at minimum delivers task-clock time; the hardware
    // tier additionally delivers cycles/instructions.
    EXPECT_GT(counts.taskClockNs + counts.cycles, 0u);
    EXPECT_EQ(registry.total().samples, counts.samples);
  } else {
    EXPECT_TRUE(counts.empty());
  }
  registry.reset();
  EXPECT_TRUE(registry.counts(KernelPath::kDense1).empty());
}

TEST(ObsPerf, PathTimerFeedsPerfRegistry) {
  qclab::obs::resetAll();
  auto& registry = qclab::obs::perfRegistry();
  registry.enable();

  qclab::QCircuit<T> circuit(4);
  for (int q = 0; q < 4; ++q) {
    circuit.push_back(qclab::qgates::Hadamard<T>(q));
  }
  const qclab::obs::InstrumentedBackend<T> backend;
  circuit.simulate("0000", backend);
  registry.disable();

  if (qclab::obs::perfCapability().any()) {
    // Every timed gate application sampled the counters on its path.
    EXPECT_EQ(registry.total().samples, 4u);
  } else {
    EXPECT_EQ(registry.total().samples, 0u);
  }
  qclab::obs::resetAll();
}

// ---- roofline (enabled builds only) -----------------------------------

TEST(ObsRoofline, CalibrationMeasuresOrExplains) {
  const auto& calibration = qclab::obs::rooflineCalibration();
  if (calibration.measured) {
    EXPECT_GT(calibration.peakGBps, 0.0);
    EXPECT_FALSE(calibration.source.empty());
  } else {
    // Only the env kill-switch produces an unmeasured enabled build.
    EXPECT_NE(calibration.source.find("QCLAB_OBS_NO_ROOFLINE"),
              std::string::npos);
  }
}

TEST(ObsRoofline, ClassificationHeuristics) {
  const qclab::obs::PerfCounts none;
  EXPECT_EQ(qclab::obs::classifyBoundedness(0.9, none), "memory-bound");
  EXPECT_EQ(qclab::obs::classifyBoundedness(0.3, none), "memory-bound");
  EXPECT_EQ(qclab::obs::classifyBoundedness(0.05, none), "compute-bound");
  EXPECT_EQ(qclab::obs::classifyBoundedness(0.0, none), "indeterminate");

  // With LLC data the miss rate decides below the 50% bandwidth line.
  qclab::obs::PerfCounts missy;
  missy.samples = 1;
  missy.llcReferences = 100;
  missy.llcMisses = 60;
  EXPECT_EQ(qclab::obs::classifyBoundedness(0.1, missy), "memory-bound");
  missy.llcMisses = 2;
  EXPECT_EQ(qclab::obs::classifyBoundedness(0.1, missy), "compute-bound");

  // Without LLC but with cycles, IPC decides.
  qclab::obs::PerfCounts stalled;
  stalled.samples = 1;
  stalled.cycles = 1000;
  stalled.instructions = 400;
  EXPECT_EQ(qclab::obs::classifyBoundedness(0.1, stalled), "memory-bound");
  stalled.instructions = 2500;
  EXPECT_EQ(qclab::obs::classifyBoundedness(0.1, stalled), "compute-bound");
}

TEST(ObsRoofline, PointPlacement) {
  const qclab::obs::PerfCounts none;
  // No data -> idle, no rates.
  const auto idle =
      qclab::obs::rooflinePoint(KernelPath::kDense1, 0, 100, none);
  EXPECT_EQ(idle.classification, "idle");
  EXPECT_EQ(idle.achievedGBps, 0.0);

  // 64 bytes in 32 ns = 2 GB/s; dense1 intensity = 14/32 flops/byte.
  const auto point =
      qclab::obs::rooflinePoint(KernelPath::kDense1, 64, 32, none);
  EXPECT_DOUBLE_EQ(point.achievedGBps, 2.0);
  EXPECT_DOUBLE_EQ(point.intensityFlopsPerByte, 14.0 / 32.0);
  EXPECT_DOUBLE_EQ(point.estGflops, 2.0 * 14.0 / 32.0);
  EXPECT_FALSE(point.classification.empty());

  // Per-path constants that the attribution depends on.
  EXPECT_EQ(qclab::obs::flopsPerAmp(KernelPath::kSwap), 0.0);
  EXPECT_EQ(qclab::obs::bytesPerAmp(KernelPath::kSwap), 16.0);
  EXPECT_EQ(qclab::obs::bytesPerAmp(KernelPath::kSparseKron), 64.0);
  EXPECT_EQ(qclab::obs::bytesPerAmp(KernelPath::kDense1), 32.0);
}

#else  // QCLAB_OBS_DISABLED

// ---- no-op build (disabled builds only) -------------------------------

TEST(ObsDisabled, CountersStayZeroAndTraceStaysEmpty) {
  auto& metrics = qclab::obs::metrics();
  metrics.reset();
  auto& tracer = qclab::obs::tracer();
  tracer.enable();  // must be a no-op

  qclab::QCircuit<T> circuit(2);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  circuit.push_back(qclab::Measurement<T>(0));
  const qclab::obs::InstrumentedBackend<T> backend;
  const auto simulation = circuit.simulate("00", backend);
  simulation.counts(100, /*seed=*/1);

  EXPECT_EQ(metrics.gateApplications(), 0u);
  EXPECT_TRUE(metrics.gateKinds().empty());
  EXPECT_EQ(metrics.branchSpawns(), 0u);
  EXPECT_EQ(metrics.shotsSampled(), 0u);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.nbEvents(), 0u);

  JsonChecker trace(tracer.chromeTraceJson());
  EXPECT_TRUE(trace.valid());
  EXPECT_NE(tracer.chromeTraceJson().find("\"droppedEvents\":0"),
            std::string::npos);
}

TEST(ObsDisabled, V3SurfacesAreInertNoOps) {
  // Stage spans: construct, nest, destroy — nothing recorded.
  {
    const qclab::obs::ScopedSpan outer("outer");
    const qclab::obs::ScopedSpan inner("inner", "stage", "key");
  }
  EXPECT_TRUE(qclab::obs::stageStats().snapshot().empty());

  // Perf: capability reports the disabled build, the registry stays off
  // even after enable(), scopes record nothing.
  const auto& capability = qclab::obs::perfCapability();
  EXPECT_FALSE(capability.any());
  EXPECT_NE(capability.reason.find("QCLAB_OBS_DISABLED"),
            std::string::npos);
  auto& registry = qclab::obs::perfRegistry();
  registry.enable();
  EXPECT_FALSE(registry.enabled());
  {
    const qclab::obs::PerfScope scope(KernelPath::kDense1);
  }
  EXPECT_TRUE(registry.total().empty());

  // Roofline: never calibrates, explains why.
  const auto& calibration = qclab::obs::rooflineCalibration();
  EXPECT_FALSE(calibration.measured);
  EXPECT_NE(calibration.source.find("QCLAB_OBS_DISABLED"),
            std::string::npos);

  // resetAll is callable and inert.
  qclab::obs::resetAll();

  // The report still renders the v3 sections with explicit markers.
  const std::string json = qclab::obs::Report("disabled_v3").json();
  EXPECT_NE(json.find("\"perf\""), std::string::npos);
  EXPECT_NE(json.find("\"roofline\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  EXPECT_NE(json.find("QCLAB_OBS_DISABLED"), std::string::npos);
}

#endif  // QCLAB_OBS_DISABLED

}  // namespace

/// \file test_parameter_binding.cpp
/// \brief Tests of the ParameterBinding layer: slot discovery across the
/// parametrized gate catalog (including nested sub-circuits), bind/read
/// round-trips through the gates' setTheta surfaces, slot membership
/// queries, and argument validation.

#include <gtest/gtest.h>

#include <vector>

#include "qclab/parameter_binding.hpp"
#include "test_helpers.hpp"

namespace qclab {
namespace {

using namespace qclab::qgates;

/// Angles round-trip through the gates' (cos θ/2, sin θ/2) storage, so
/// read-back is exact only up to the atan2 reconstruction.
template <typename T>
void expectAnglesNear(const std::vector<T>& actual,
                      const std::vector<T>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], test::tol<T>()) << "slot " << i;
  }
}

TEST(ParameterBinding, CollectsEveryParametrizedFamilyInOrder) {
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));          // no slot
  circuit.push_back(RotationX<double>(0, 0.1));    // slot 0
  circuit.push_back(RotationY<double>(1, 0.2));    // slot 1
  circuit.push_back(RotationZ<double>(2, 0.3));    // slot 2
  circuit.push_back(Phase<double>(0, 0.4));        // slot 3
  circuit.push_back(CX<double>(0, 1));             // no slot
  circuit.push_back(CPhase<double>(0, 1, 0.5));    // slot 4
  circuit.push_back(CRotationX<double>(0, 1, 0.6));  // slot 5
  circuit.push_back(CRotationY<double>(1, 2, 0.7));  // slot 6
  circuit.push_back(CRotationZ<double>(0, 2, 0.8));  // slot 7
  circuit.push_back(RotationXX<double>(0, 1, 0.9));  // slot 8
  circuit.push_back(RotationYY<double>(1, 2, 1.0));  // slot 9
  circuit.push_back(RotationZZ<double>(0, 2, 1.1));  // slot 10

  ParameterBinding<double> binding(circuit);
  ASSERT_EQ(binding.nbParameters(), 11u);
  const std::vector<double> expected = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6,
                                        0.7, 0.8, 0.9, 1.0, 1.1};
  expectAnglesNear(binding.parameters(), expected);
}

TEST(ParameterBinding, DescendsIntoSubCircuits) {
  QCircuit<double> inner(2);
  inner.push_back(RotationZ<double>(0, 0.25));
  inner.push_back(RotationZ<double>(1, 0.50));

  QCircuit<double> circuit(3);
  circuit.push_back(RotationX<double>(0, 0.1));
  circuit.push_back(std::make_unique<QCircuit<double>>(inner));
  circuit.push_back(RotationY<double>(2, 0.9));

  ParameterBinding<double> binding(circuit);
  ASSERT_EQ(binding.nbParameters(), 4u);
  expectAnglesNear(binding.parameters(), {0.1, 0.25, 0.50, 0.9});
}

TEST(ParameterBinding, BindWritesThroughSetTheta) {
  QCircuit<double> circuit(2);
  circuit.push_back(RotationX<double>(0, 0.0));
  circuit.push_back(CPhase<double>(0, 1, 0.0));
  circuit.push_back(RotationZZ<double>(0, 1, 0.0));

  ParameterBinding<double> binding(circuit);
  const std::vector<double> values = {1.5, -0.75, 2.25};
  binding.bind(values);
  expectAnglesNear(binding.parameters(), values);

  // The values landed on the gates themselves, not a side table.
  const auto& rx =
      static_cast<const RotationX<double>&>(circuit.objectAt(0));
  EXPECT_NEAR(rx.theta(), 1.5, test::tol<double>());
}

TEST(ParameterBinding, BindRejectsWrongLength) {
  QCircuit<double> circuit(1);
  circuit.push_back(RotationX<double>(0, 0.0));
  ParameterBinding<double> binding(circuit);
  EXPECT_THROW(binding.bind({}), InvalidArgumentError);
  EXPECT_THROW(binding.bind({0.1, 0.2}), InvalidArgumentError);
}

TEST(ParameterBinding, IsBoundDistinguishesSlotGates) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(RotationZ<double>(1, 0.3));
  circuit.push_back(CX<double>(0, 1));

  ParameterBinding<double> binding(circuit);
  EXPECT_FALSE(binding.isBound(&circuit.objectAt(0)));
  EXPECT_TRUE(binding.isBound(&circuit.objectAt(1)));
  EXPECT_FALSE(binding.isBound(&circuit.objectAt(2)));
}

TEST(ParameterBinding, BindingSurvivesAngleRebindsFloat) {
  QCircuit<float> circuit(2);
  circuit.push_back(RotationY<float>(0, 0.5f));
  circuit.push_back(RotationY<float>(1, 0.5f));

  ParameterBinding<float> binding(circuit);
  binding.bind({1.0f, 2.0f});
  binding.bind({3.0f, 4.0f});
  expectAnglesNear(binding.parameters(), {3.0f, 4.0f});
}

}  // namespace
}  // namespace qclab

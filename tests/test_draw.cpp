/// \file test_draw.cpp
/// \brief Unit tests for the column layout engine and the ASCII / LaTeX
/// renderers (paper §4).

#include <gtest/gtest.h>

#include "qclab/io/layout.hpp"
#include "test_helpers.hpp"

namespace qclab::io {
namespace {

using namespace qclab::qgates;

TEST(DrawItem, SpanIncludesControls) {
  DrawItem item;
  item.boxTop = 2;
  item.boxBottom = 2;
  item.controls1 = {0};
  item.controls0 = {4};
  EXPECT_EQ(item.top(), 0);
  EXPECT_EQ(item.bottom(), 4);
}

TEST(Layout, ParallelGatesShareColumn) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Hadamard<double>(1));
  std::vector<DrawItem> items;
  circuit.appendDrawItems(items);
  int nbColumns = 0;
  const auto columns = assignColumns(items, 2, nbColumns);
  EXPECT_EQ(nbColumns, 1);
  EXPECT_EQ(columns[0], columns[1]);
}

TEST(Layout, OverlappingGatesStack) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Hadamard<double>(0));
  std::vector<DrawItem> items;
  circuit.appendDrawItems(items);
  int nbColumns = 0;
  const auto columns = assignColumns(items, 2, nbColumns);
  EXPECT_EQ(nbColumns, 3);
  EXPECT_LT(columns[0], columns[1]);
  EXPECT_LT(columns[1], columns[2]);
}

TEST(Layout, ControlSpanBlocksMiddleWire) {
  // CZ(0, 2) blocks qubit 1's column even though no box sits there.
  QCircuit<double> circuit(3);
  circuit.push_back(CZ<double>(0, 2));
  circuit.push_back(Hadamard<double>(1));
  std::vector<DrawItem> items;
  circuit.appendDrawItems(items);
  int nbColumns = 0;
  const auto columns = assignColumns(items, 3, nbColumns);
  EXPECT_EQ(nbColumns, 2);
  EXPECT_LT(columns[0], columns[1]);
}

TEST(Layout, BarrierSeparatesColumns) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Barrier<double>(0, 1));
  circuit.push_back(Hadamard<double>(1));
  std::vector<DrawItem> items;
  circuit.appendDrawItems(items);
  int nbColumns = 0;
  const auto columns = assignColumns(items, 2, nbColumns);
  // H(1) could have shared a column with H(0), but the barrier intervenes.
  EXPECT_EQ(columns[2], 2);
}

TEST(AsciiRender, ContainsWiresLabelsAndBoxes) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  const auto drawing = circuit.draw();
  EXPECT_NE(drawing.find("q0:"), std::string::npos);
  EXPECT_NE(drawing.find("q1:"), std::string::npos);
  EXPECT_NE(drawing.find("H"), std::string::npos);
  EXPECT_NE(drawing.find("●"), std::string::npos);
  EXPECT_NE(drawing.find("┤"), std::string::npos);
  EXPECT_NE(drawing.find("─"), std::string::npos);
  // 2 qubits x 3 text rows.
  EXPECT_EQ(std::count(drawing.begin(), drawing.end(), '\n'), 6);
}

TEST(AsciiRender, OpenControlUsesHollowDot) {
  QCircuit<double> circuit(2);
  circuit.push_back(CX<double>(0, 1, 0));
  const auto drawing = circuit.draw();
  EXPECT_NE(drawing.find("○"), std::string::npos);
}

TEST(AsciiRender, SwapCrossesAndBarrier) {
  QCircuit<double> circuit(3);
  circuit.push_back(SWAP<double>(0, 2));
  circuit.push_back(Barrier<double>(0, 2));
  const auto drawing = circuit.draw();
  EXPECT_EQ(drawing.find("╳") != std::string::npos, true);
  EXPECT_NE(drawing.find("░"), std::string::npos);
}

TEST(AsciiRender, MeasurementBox) {
  QCircuit<double> circuit(1);
  circuit.push_back(Measurement<double>(0, 'x'));
  const auto drawing = circuit.draw();
  EXPECT_NE(drawing.find("Mx"), std::string::npos);
}

TEST(AsciiRender, BlockCircuitDrawsAsSingleBox) {
  QCircuit<double> sub(2);
  sub.push_back(Hadamard<double>(0));
  sub.push_back(CX<double>(0, 1));
  sub.asBlock("oracle");
  QCircuit<double> circuit(2);
  circuit.push_back(QCircuit<double>(sub));
  const auto drawing = circuit.draw();
  EXPECT_NE(drawing.find("oracle"), std::string::npos);
  EXPECT_EQ(drawing.find("H"), std::string::npos);  // contents hidden
  sub.unBlock();
  QCircuit<double> unblocked(2);
  unblocked.push_back(QCircuit<double>(sub));
  EXPECT_NE(unblocked.draw().find("H"), std::string::npos);
}

TEST(AsciiRender, MidWireCrossingUsesCrossGlyph) {
  // CZ(0, 2): the connector must cross qubit 1's wire with a ┼.
  QCircuit<double> circuit(3);
  circuit.push_back(CZ<double>(0, 2));
  const auto drawing = circuit.draw();
  EXPECT_NE(drawing.find("┼"), std::string::npos);
  EXPECT_NE(drawing.find("│"), std::string::npos);
}

TEST(LatexRender, QuantikzStructure) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  const auto tex = circuit.toTex();
  EXPECT_NE(tex.find("\\begin{quantikz}"), std::string::npos);
  EXPECT_NE(tex.find("\\end{quantikz}"), std::string::npos);
  EXPECT_NE(tex.find("\\gate{H}"), std::string::npos);
  EXPECT_NE(tex.find("\\ctrl{1}"), std::string::npos);
  EXPECT_NE(tex.find("\\meter{}"), std::string::npos);
  EXPECT_NE(tex.find("\\lstick{$q_{0}$}"), std::string::npos);
}

TEST(LatexRender, OpenControlAndSwap) {
  QCircuit<double> circuit(3);
  circuit.push_back(CX<double>(0, 1, 0));
  circuit.push_back(SWAP<double>(1, 2));
  const auto tex = circuit.toTex();
  EXPECT_NE(tex.find("\\octrl{"), std::string::npos);
  EXPECT_NE(tex.find("\\swap{1}"), std::string::npos);
  EXPECT_NE(tex.find("\\targX{}"), std::string::npos);
}

TEST(LatexRender, MultiQubitGateUsesWires) {
  QCircuit<double> circuit(3);
  circuit.push_back(
      MatrixGateN<double>({0, 2}, dense::Matrix<double>::identity(4), "G"));
  const auto tex = circuit.toTex();
  EXPECT_NE(tex.find("\\gate[wires=3]{G}"), std::string::npos);
}

TEST(LatexRender, EscapesSpecialCharacters) {
  QCircuit<double> circuit(1);
  circuit.push_back(
      MatrixGate1<double>(0, dense::Matrix<double>::identity(2), "a_b%c"));
  const auto tex = circuit.toTex();
  EXPECT_NE(tex.find("a\\_b\\%c"), std::string::npos);
}

TEST(AsciiRender, PaperTeleportationShapeSmokeTest) {
  const auto circuit = qclab::algorithms::teleportationCircuit<double>();
  const auto drawing = circuit.draw();
  // 3 qubits -> 9 lines; both measurements and both controls visible.
  EXPECT_EQ(std::count(drawing.begin(), drawing.end(), '\n'), 9);
  std::size_t measureCount = 0;
  for (std::size_t pos = drawing.find("M"); pos != std::string::npos;
       pos = drawing.find("M", pos + 1)) {
    ++measureCount;
  }
  EXPECT_EQ(measureCount, 2u);
}

}  // namespace
}  // namespace qclab::io

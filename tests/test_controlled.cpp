/// \file test_controlled.cpp
/// \brief Unit tests for the singly-controlled gates (CX, CY, CZ, CH,
/// CPhase, CRX/CRY/CRZ) including control-above-target, control-below-
/// target, and 0-controlled variants.

#include <gtest/gtest.h>

#include <sstream>

#include "qclab/qgates/qgates.hpp"
#include "test_helpers.hpp"

namespace qclab::qgates {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

/// Reference controlled matrix via projectors:
/// control < target: |s><s| (x) U + |!s><!s| (x) I.
M referenceControlled(const M& u, bool controlFirst, int controlState) {
  M p0(2, 2), p1(2, 2);
  p0(0, 0) = C(1);
  p1(1, 1) = C(1);
  const M& active = controlState == 1 ? p1 : p0;
  const M& inactive = controlState == 1 ? p0 : p1;
  if (controlFirst) {
    return dense::kron(active, u) + dense::kron(inactive, M::identity(2));
  }
  return dense::kron(u, active) + dense::kron(M::identity(2), inactive);
}

TEST(Cnot, TruthTable) {
  const auto cx = CX<double>(0, 1).matrix();
  // |00> -> |00>, |01> -> |01>, |10> -> |11>, |11> -> |10>.
  EXPECT_EQ(cx(0, 0), C(1));
  EXPECT_EQ(cx(1, 1), C(1));
  EXPECT_EQ(cx(3, 2), C(1));
  EXPECT_EQ(cx(2, 3), C(1));
  EXPECT_EQ(cx(2, 2), C(0));
}

TEST(Cnot, ControlBelowTarget) {
  const auto cx = CX<double>(1, 0).matrix();  // control q1, target q0
  // |01> -> |11>, |11> -> |01>.
  EXPECT_EQ(cx(1, 3), C(1));
  EXPECT_EQ(cx(3, 1), C(1));
  EXPECT_EQ(cx(0, 0), C(1));
  EXPECT_EQ(cx(2, 2), C(1));
  qclab::test::expectMatrixNear(
      cx, referenceControlled(dense::pauliX<double>(), false, 1));
}

TEST(Cnot, ZeroControlState) {
  const auto cx = CX<double>(0, 1, 0).matrix();
  qclab::test::expectMatrixNear(
      cx, referenceControlled(dense::pauliX<double>(), true, 0));
}

TEST(Cnot, AliasAndAccessors) {
  const CNOT<double> cnot(2, 0);
  EXPECT_EQ(cnot.control(), 2);
  EXPECT_EQ(cnot.target(), 0);
  EXPECT_EQ(cnot.controlState(), 1);
  EXPECT_EQ(cnot.qubits(), (std::vector<int>{0, 2}));
  EXPECT_EQ(cnot.nbQubits(), 2);
  EXPECT_EQ(cnot.controls(), std::vector<int>{2});
  EXPECT_EQ(cnot.targets(), std::vector<int>{0});
}

TEST(Cnot, Validation) {
  EXPECT_THROW(CX<double>(1, 1), InvalidArgumentError);
  EXPECT_THROW(CX<double>(-1, 0), InvalidArgumentError);
  EXPECT_THROW(CX<double>(0, 1, 2), InvalidArgumentError);
}

TEST(Cz, SymmetricAndDiagonal) {
  const auto cz01 = CZ<double>(0, 1).matrix();
  const auto cz10 = CZ<double>(1, 0).matrix();
  qclab::test::expectMatrixNear(cz01, cz10);  // CZ is symmetric
  EXPECT_TRUE(CZ<double>(0, 1).isDiagonal());
  EXPECT_EQ(cz01(3, 3), C(-1));
  EXPECT_EQ(cz01(0, 0), C(1));
}

TEST(ControlledGates, MatchProjectorReference) {
  struct Case {
    std::unique_ptr<QControlledGate2<double>> gate;
    M target;
  };
  std::vector<Case> cases;
  cases.push_back({std::make_unique<CY<double>>(0, 1), dense::pauliY<double>()});
  cases.push_back({std::make_unique<CH<double>>(0, 1),
                   Hadamard<double>(0).matrix()});
  cases.push_back({std::make_unique<CPhase<double>>(0, 1, 0.7),
                   Phase<double>(0, 0.7).matrix()});
  cases.push_back({std::make_unique<CRotationX<double>>(0, 1, 0.9),
                   RotationX<double>(0, 0.9).matrix()});
  cases.push_back({std::make_unique<CRotationY<double>>(0, 1, -0.4),
                   RotationY<double>(0, -0.4).matrix()});
  cases.push_back({std::make_unique<CRotationZ<double>>(0, 1, 1.3),
                   RotationZ<double>(0, 1.3).matrix()});
  for (const auto& testCase : cases) {
    qclab::test::expectMatrixNear(
        testCase.gate->matrix(),
        referenceControlled(testCase.target, true, 1));
  }
}

TEST(ControlledGates, InverseIsMatrixInverse) {
  std::vector<std::unique_ptr<QControlledGate2<double>>> gates;
  gates.push_back(std::make_unique<CX<double>>(0, 1));
  gates.push_back(std::make_unique<CY<double>>(1, 0));
  gates.push_back(std::make_unique<CZ<double>>(0, 1, 0));
  gates.push_back(std::make_unique<CH<double>>(1, 0));
  gates.push_back(std::make_unique<CPhase<double>>(0, 1, 0.6));
  gates.push_back(std::make_unique<CRotationX<double>>(0, 1, -1.1));
  gates.push_back(std::make_unique<CRotationY<double>>(1, 0, 0.2));
  gates.push_back(std::make_unique<CRotationZ<double>>(0, 1, 2.1));
  for (const auto& gate : gates) {
    const auto inverse = gate->inverse();
    qclab::test::expectMatrixNear(inverse->matrix() * gate->matrix(),
                                  M::identity(4));
  }
}

TEST(ControlledGates, DiagonalFlags) {
  EXPECT_TRUE(CPhase<double>(0, 1, 0.3).isDiagonal());
  EXPECT_TRUE(CRotationZ<double>(0, 1, 0.3).isDiagonal());
  EXPECT_FALSE(CX<double>(0, 1).isDiagonal());
  EXPECT_FALSE(CH<double>(0, 1).isDiagonal());
  EXPECT_FALSE(CRotationX<double>(0, 1, 0.3).isDiagonal());
}

TEST(ControlledGates, QasmEmitsControlStateWrapper) {
  std::ostringstream plain;
  CX<double>(0, 1).toQASM(plain);
  EXPECT_EQ(plain.str(), "cx q[0], q[1];\n");

  std::ostringstream wrapped;
  CX<double>(0, 1, 0).toQASM(wrapped);
  EXPECT_EQ(wrapped.str(), "x q[0];\ncx q[0], q[1];\nx q[0];\n");

  std::ostringstream cp;
  CPhase<double>(2, 0, 0.5).toQASM(cp);
  EXPECT_EQ(cp.str().substr(0, 3), "cp(");
  EXPECT_NE(cp.str().find("q[2], q[0]"), std::string::npos);
}

TEST(ControlledGates, DrawItems) {
  std::vector<io::DrawItem> items;
  CX<double>(2, 0).appendDrawItems(items);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].boxTop, 0);           // box on target
  EXPECT_EQ(items[0].controls1, std::vector<int>{2});
  EXPECT_EQ(items[0].top(), 0);
  EXPECT_EQ(items[0].bottom(), 2);

  items.clear();
  CZ<double>(0, 1, 0).appendDrawItems(items);
  EXPECT_EQ(items[0].controls0, std::vector<int>{0});
  EXPECT_TRUE(items[0].controls1.empty());
}

TEST(ControlledGates, ShiftQubits) {
  CX<double> gate(0, 2);
  gate.shiftQubits(3);
  EXPECT_EQ(gate.control(), 3);
  EXPECT_EQ(gate.target(), 5);
  EXPECT_THROW(gate.shiftQubits(-4), InvalidArgumentError);
}

TEST(ControlledGates, CPhaseThetaManagement) {
  CPhase<double> gate(0, 1, 0.5);
  EXPECT_NEAR(gate.theta(), 0.5, 1e-14);
  gate.setTheta(1.25);
  EXPECT_NEAR(gate.theta(), 1.25, 1e-14);
}

// Distant-pair sweep: the controlled matrix on its two qubits must be
// independent of how far apart they sit (qubits() only records the pair).
class ControlDistanceSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ControlDistanceSweep, MatrixIndependentOfLabels) {
  const auto [control, target] = GetParam();
  if (control == target) GTEST_SKIP();
  const auto m = CX<double>(control, target).matrix();
  const auto reference =
      CX<double>(control < target ? 0 : 1, control < target ? 1 : 0).matrix();
  qclab::test::expectMatrixNear(m, reference);
}

INSTANTIATE_TEST_SUITE_P(Pairs, ControlDistanceSweep,
                         ::testing::Combine(::testing::Values(0, 1, 3, 7),
                                            ::testing::Values(0, 2, 5)));

}  // namespace
}  // namespace qclab::qgates

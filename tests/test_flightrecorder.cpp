/// \file test_flightrecorder.cpp
/// \brief Flight-recorder tests: event capture through the instrumented
/// pipeline (gates, fused blocks, blocked runs, batch members), ring wrap
/// at capacity, enable/disable toggling, the qubit-mask helper, and the
/// no-op surface under QCLAB_OBS_DISABLED.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"

using qclab::obs::FlightEventKind;
using qclab::obs::flightRecorder;
using qclab::obs::kFlightRingCapacity;
using qclab::obs::qubitMask64;
using qclab::sim::KernelPath;

namespace {

using T = double;

qclab::QCircuit<T> ghz(int n) {
  qclab::QCircuit<T> circuit(n);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  for (int q = 1; q < n; ++q) {
    circuit.push_back(qclab::qgates::CX<T>(q - 1, q));
  }
  return circuit;
}

}  // namespace

TEST(FlightRecorder, QubitMask64CoversLowQubitsAndDropsTheRest) {
  EXPECT_EQ(qubitMask64({}), 0u);
  EXPECT_EQ(qubitMask64({0}), 1u);
  EXPECT_EQ(qubitMask64({0, 1}), 3u);
  EXPECT_EQ(qubitMask64({2, 63}),
            (std::uint64_t{1} << 2) | (std::uint64_t{1} << 63));
  // Out-of-range indices drop from the mask without corrupting it.
  EXPECT_EQ(qubitMask64({64, 100, -1, 3}), std::uint64_t{1} << 3);
}

TEST(FlightRecorder, EventKindNamesAreStable) {
  EXPECT_STREQ(qclab::obs::flightEventKindName(FlightEventKind::kGate),
               "gate");
  EXPECT_STREQ(qclab::obs::flightEventKindName(FlightEventKind::kFusedBlock),
               "fused-block");
  EXPECT_STREQ(
      qclab::obs::flightEventKindName(FlightEventKind::kSentinelAlert),
      "sentinel-alert");
}

#ifndef QCLAB_OBS_DISABLED

TEST(FlightRecorder, RecordsGateEventsFromInstrumentedSimulate) {
  qclab::obs::resetAll();
  flightRecorder().enable();

  const qclab::obs::InstrumentedBackend<T> backend;
  const auto circuit = ghz(4);  // 1 H + 3 CX
  circuit.simulate("0000", backend);

  EXPECT_GE(flightRecorder().totalRecorded(), 4u);
  const auto snapshots = flightRecorder().snapshot();
  ASSERT_FALSE(snapshots.empty());

  bool sawHadamard = false, sawCx = false;
  for (const auto& snap : snapshots) {
    for (const auto& event : snap.events) {
      if (event.kind != static_cast<std::uint16_t>(FlightEventKind::kGate)) {
        continue;
      }
      if (event.qubitMask == qubitMask64({0})) sawHadamard = true;
      if (event.qubitMask == qubitMask64({0, 1})) sawCx = true;
    }
  }
  EXPECT_TRUE(sawHadamard) << "no single-qubit gate event on qubit 0";
  EXPECT_TRUE(sawCx) << "no two-qubit gate event on qubits {0,1}";
}

TEST(FlightRecorder, FusedAndBlockedSweepsRecordTheirOwnKinds) {
  qclab::obs::resetAll();
  flightRecorder().enable();

  // The recipe from test_blocking: gates on high qubits with a small
  // chunk guarantee at least one cache-blocked run.
  qclab::QCircuit<T> circuit(8);
  circuit.push_back(qclab::qgates::Hadamard<T>(5));
  circuit.push_back(qclab::qgates::CX<T>(5, 6));
  circuit.push_back(qclab::qgates::Hadamard<T>(7));
  circuit.push_back(qclab::qgates::CX<T>(6, 7));

  qclab::SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.maxQubits = 2;
  options.fusionOptions.blockQubits = 3;
  circuit.simulate("00000000", options);

  ASSERT_GE(qclab::obs::metrics().gateApplications(KernelPath::kBlocked), 1u)
      << "workload did not reach the blocked executor";

  bool sawBlockedRun = false;
  for (const auto& snap : flightRecorder().snapshot()) {
    for (const auto& event : snap.events) {
      if (event.kind ==
          static_cast<std::uint16_t>(FlightEventKind::kBlockedRun)) {
        sawBlockedRun = true;
        EXPECT_EQ(event.path,
                  static_cast<std::uint16_t>(KernelPath::kBlocked));
        EXPECT_GE(event.aux, 1u);  // blocks executed in the run
      }
    }
  }
  EXPECT_TRUE(sawBlockedRun);
}

TEST(FlightRecorder, BatchMembersRecordMemberIndices) {
  qclab::obs::resetAll();
  flightRecorder().enable();

  qclab::QCircuit<T> circuit(3);
  for (int q = 0; q < 3; ++q) {
    circuit.push_back(qclab::qgates::RotationY<T>(q, 0.0));
  }
  circuit.simulateBatch({{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}});

  std::vector<bool> memberSeen(2, false);
  for (const auto& snap : flightRecorder().snapshot()) {
    for (const auto& event : snap.events) {
      if (event.kind ==
              static_cast<std::uint16_t>(FlightEventKind::kBatchMember) &&
          event.aux < memberSeen.size()) {
        memberSeen[event.aux] = true;
        EXPECT_EQ(event.path,
                  static_cast<std::uint16_t>(KernelPath::kBatch));
      }
    }
  }
  EXPECT_TRUE(memberSeen[0]);
  EXPECT_TRUE(memberSeen[1]);
}

TEST(FlightRecorder, RingWrapsAtCapacityKeepingNewestEvents) {
  qclab::obs::resetAll();
  flightRecorder().enable();

  const std::uint64_t total = kFlightRingCapacity + 500;
  for (std::uint64_t i = 0; i < total; ++i) {
    flightRecorder().record(FlightEventKind::kGate, 0, 0,
                            static_cast<std::uint32_t>(i));
  }

  // Find this thread's ring: the one that recorded `total` events.
  bool found = false;
  for (const auto& snap : flightRecorder().snapshot()) {
    if (snap.recorded != total) continue;
    found = true;
    ASSERT_EQ(snap.events.size(), kFlightRingCapacity);
    // Oldest retained event is number total - capacity; newest is total-1.
    EXPECT_EQ(snap.events.front().aux,
              static_cast<std::uint32_t>(total - kFlightRingCapacity));
    EXPECT_EQ(snap.events.back().aux, static_cast<std::uint32_t>(total - 1));
  }
  EXPECT_TRUE(found) << "no ring recorded the expected event count";
}

TEST(FlightRecorder, DisableStopsRecordingEnableResumes) {
  qclab::obs::resetAll();
  flightRecorder().enable();
  flightRecorder().record(FlightEventKind::kGate, 0, 1);
  const std::uint64_t afterOne = flightRecorder().totalRecorded();
  EXPECT_GE(afterOne, 1u);

  flightRecorder().disable();
  EXPECT_FALSE(flightRecorder().enabled());
  flightRecorder().record(FlightEventKind::kGate, 0, 2);
  EXPECT_EQ(flightRecorder().totalRecorded(), afterOne);

  flightRecorder().enable();
  EXPECT_TRUE(flightRecorder().enabled());
  flightRecorder().record(FlightEventKind::kGate, 0, 3);
  EXPECT_EQ(flightRecorder().totalRecorded(), afterOne + 1);
}

TEST(FlightRecorder, ResetRewindsEveryRing) {
  flightRecorder().enable();
  flightRecorder().record(FlightEventKind::kGate, 0, 0);
  EXPECT_GE(flightRecorder().totalRecorded(), 1u);
  flightRecorder().reset();
  EXPECT_EQ(flightRecorder().totalRecorded(), 0u);
}

#else  // QCLAB_OBS_DISABLED

TEST(FlightRecorder, DisabledBuildRecordsNothing) {
  flightRecorder().enable();  // no-op
  EXPECT_FALSE(flightRecorder().enabled());
  flightRecorder().record(FlightEventKind::kGate, 0, 1, 2);
  EXPECT_EQ(flightRecorder().totalRecorded(), 0u);
  EXPECT_EQ(flightRecorder().threadCount(), 0u);
  EXPECT_TRUE(flightRecorder().snapshot().empty());
}

#endif  // QCLAB_OBS_DISABLED

/// \file test_controlled_extra.cpp
/// \brief Unit tests for the Fredkin (CSWAP) and generic CU gates.

#include <gtest/gtest.h>

#include <sstream>

#include "qclab/io/qasm.hpp"
#include "test_helpers.hpp"

namespace qclab::qgates {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

TEST(Fredkin, TruthTable) {
  const auto m = Fredkin<double>(0, 1, 2).matrix();
  EXPECT_EQ(m.rows(), 8u);
  // Only |101> <-> |110> are exchanged.
  EXPECT_EQ(m(5, 6), C(1));
  EXPECT_EQ(m(6, 5), C(1));
  for (std::size_t i : {0u, 1u, 2u, 3u, 4u, 7u}) EXPECT_EQ(m(i, i), C(1));
  EXPECT_TRUE(m.isUnitary(1e-14));
}

TEST(Fredkin, SelfInverse) {
  const Fredkin<double> gate(1, 0, 2);
  qclab::test::expectMatrixNear(gate.inverse()->matrix() * gate.matrix(),
                                M::identity(8));
}

TEST(Fredkin, ControlStateZero) {
  const auto m = Fredkin<double>(0, 1, 2, 0).matrix();
  // Swap happens when control is |0>: |001> <-> |010>.
  EXPECT_EQ(m(1, 2), C(1));
  EXPECT_EQ(m(2, 1), C(1));
  EXPECT_EQ(m(5, 5), C(1));
  EXPECT_EQ(m(6, 6), C(1));
}

TEST(Fredkin, EqualsToffoliSandwich) {
  // CSWAP(c; a, b) == CX(b, a) . CCX(c, a; b) . CX(b, a).
  QCircuit<double> decomposed(3);
  decomposed.push_back(CX<double>(2, 1));
  decomposed.push_back(Toffoli<double>(0, 1, 2));
  decomposed.push_back(CX<double>(2, 1));
  qclab::test::expectMatrixNear(Fredkin<double>(0, 1, 2).matrix(),
                                decomposed.matrix());
}

TEST(Fredkin, AccessorsAndValidation) {
  const Fredkin<double> gate(3, 2, 0);
  EXPECT_EQ(gate.control(), 3);
  EXPECT_EQ(gate.target0(), 0);  // sorted
  EXPECT_EQ(gate.target1(), 2);
  EXPECT_EQ(gate.qubits(), (std::vector<int>{0, 2, 3}));
  EXPECT_THROW(Fredkin<double>(0, 1, 1), InvalidArgumentError);
  EXPECT_THROW(Fredkin<double>(1, 1, 2), InvalidArgumentError);
  EXPECT_THROW(Fredkin<double>(-1, 1, 2), InvalidArgumentError);
}

TEST(Fredkin, SimulatesThroughKernelBackend) {
  // Fredkin has one control and two targets -> exercises the applyK path.
  QCircuit<double> circuit(4);
  circuit.push_back(Fredkin<double>(1, 0, 3));
  random::Rng rng(1);
  const auto state = qclab::test::randomState<double>(4, rng);
  const sim::KernelBackend<double> kernel;
  const sim::SparseKronBackend<double> sparse;
  qclab::test::expectStateNear(circuit.simulate(state, kernel).state(0),
                               circuit.simulate(state, sparse).state(0),
                               1e-12);
}

TEST(Fredkin, QasmAndDraw) {
  std::ostringstream qasm;
  Fredkin<double>(0, 1, 2).toQASM(qasm);
  EXPECT_EQ(qasm.str(), "cswap q[0], q[1], q[2];\n");
  std::vector<io::DrawItem> items;
  Fredkin<double>(0, 1, 2).appendDrawItems(items);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].kind, io::DrawItem::Kind::kSwap);
  EXPECT_EQ(items[0].controls1, std::vector<int>{0});
}

TEST(Cu, MatchesNamedControlledGates) {
  // CU(theta, 0, 0, 0) == CRY(theta) ... up to the u3/RY equality.
  qclab::test::expectMatrixNear(CU<double>(0, 1, 0.7, 0.0, 0.0).matrix(),
                                CRotationY<double>(0, 1, 0.7).matrix());
  // CU(0, 0, lambda, 0) == CPhase(lambda).
  qclab::test::expectMatrixNear(CU<double>(0, 1, 0.0, 0.0, 0.9).matrix(),
                                CPhase<double>(0, 1, 0.9).matrix());
}

TEST(Cu, GammaIsControlledGlobalPhase) {
  // CU(0, 0, 0, gamma) == CPhase(gamma) acting on the *control* subspace:
  // diag(1, 1, e^{ig}, e^{ig}) for control 0, target 1.
  const double gamma = 0.6;
  const auto m = CU<double>(0, 1, 0.0, 0.0, 0.0, gamma).matrix();
  const C phase = std::polar(1.0, gamma);
  EXPECT_NEAR(std::abs(m(0, 0) - C(1)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(m(1, 1) - C(1)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(m(2, 2) - phase), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(m(3, 3) - phase), 0.0, 1e-14);
}

TEST(Cu, FromMatrixIsExact) {
  random::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto u = qclab::test::randomUnitary1<double>(rng);
    const auto cu = CU<double>::fromMatrix(0, 1, u);
    const auto reference =
        controlledMatrix<double>({0, 1}, {0}, {1}, {1}, u);
    qclab::test::expectMatrixNear(cu.matrix(), reference, 1e-11);
  }
}

TEST(Cu, InverseIsMatrixInverse) {
  const CU<double> gate(1, 0, 0.5, -0.3, 1.1, 0.4);
  qclab::test::expectMatrixNear(gate.inverse()->matrix() * gate.matrix(),
                                M::identity(4), 1e-12);
}

TEST(Cu, QasmRoundTrip) {
  QCircuit<double> circuit(2);
  circuit.push_back(CU<double>(0, 1, 0.5, -0.3, 1.1, 0.4));
  circuit.push_back(CU<double>(1, 0, 0.2, 0.0, 0.0, 0.0, 0));
  const auto reparsed = io::parseQasm<double>(circuit.toQASM());
  qclab::test::expectMatrixNear(reparsed.matrix(), circuit.matrix(), 1e-11);
}

TEST(Cu, CswapQasmRoundTrip) {
  QCircuit<double> circuit(3);
  circuit.push_back(Fredkin<double>(2, 0, 1));
  circuit.push_back(CU<double>(0, 2, 1.2, 0.3, -0.7, 0.25));
  const auto reparsed = io::parseQasm<double>(circuit.toQASM());
  qclab::test::expectMatrixNear(reparsed.matrix(), circuit.matrix(), 1e-11);
}

TEST(Cu, ShiftQubits) {
  CU<double> gate(0, 1, 0.1, 0.2, 0.3);
  gate.shiftQubits(2);
  EXPECT_EQ(gate.control(), 2);
  EXPECT_EQ(gate.target(), 3);
  Fredkin<double> fredkin(0, 1, 2);
  fredkin.shiftQubits(1);
  EXPECT_EQ(fredkin.qubits(), (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace qclab::qgates

/// \file test_algorithms2.cpp
/// \brief Unit tests for the oracle-based and communication algorithms
/// (Bernstein-Vazirani, Deutsch-Jozsa, superdense coding, W states) and the
/// entropy utilities.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab::algorithms {
namespace {

using C = std::complex<double>;

TEST(BernsteinVazirani, RecoversSecretInOneQuery) {
  for (const std::string secret : {"1", "101", "0000", "11011", "100110"}) {
    const auto circuit = bernsteinVazirani<double>(secret);
    const auto simulation = circuit.simulate(
        std::string(secret.size() + 1, '0'));
    ASSERT_EQ(simulation.nbBranches(), 1u) << secret;
    EXPECT_EQ(simulation.result(0), secret);
    EXPECT_NEAR(simulation.probability(0), 1.0, 1e-12);
  }
}

TEST(BernsteinVazirani, Validation) {
  EXPECT_THROW(bernsteinVazirani<double>(""), InvalidArgumentError);
  EXPECT_THROW(innerProductOracle<double>("1a0"), InvalidArgumentError);
}

TEST(DeutschJozsa, ConstantGivesAllZeros) {
  for (const auto kind : {DeutschJozsaOracle::kConstantZero,
                          DeutschJozsaOracle::kConstantOne}) {
    const auto circuit = deutschJozsa<double>(4, kind);
    const auto simulation = circuit.simulate(std::string(5, '0'));
    ASSERT_EQ(simulation.nbBranches(), 1u);
    EXPECT_EQ(simulation.result(0), "0000");
  }
}

TEST(DeutschJozsa, BalancedNeverGivesAllZeros) {
  for (const std::string mask : {"1000", "0110", "1111"}) {
    const auto circuit =
        deutschJozsa<double>(4, DeutschJozsaOracle::kBalanced, mask);
    const auto simulation = circuit.simulate(std::string(5, '0'));
    for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
      EXPECT_NE(simulation.result(i), "0000") << mask;
    }
    // Inner-product oracles concentrate all probability on the mask.
    ASSERT_EQ(simulation.nbBranches(), 1u);
    EXPECT_EQ(simulation.result(0), mask);
  }
}

TEST(DeutschJozsa, Validation) {
  EXPECT_THROW(
      deutschJozsa<double>(3, DeutschJozsaOracle::kBalanced, "0000"),
      InvalidArgumentError);
  EXPECT_THROW(
      deutschJozsa<double>(3, DeutschJozsaOracle::kBalanced, "000"),
      InvalidArgumentError);
  EXPECT_THROW(deutschJozsa<double>(0, DeutschJozsaOracle::kConstantZero),
               InvalidArgumentError);
}

class SuperdenseSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SuperdenseSweep, TransmitsTwoBitsPerfectly) {
  const std::string bits = GetParam();
  const auto circuit = superdenseCoding<double>(bits);
  const auto simulation = circuit.simulate("00");
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0), bits);
  EXPECT_NEAR(simulation.probability(0), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllMessages, SuperdenseSweep,
                         ::testing::Values("00", "01", "10", "11"));

TEST(SuperdenseCoding, Validation) {
  EXPECT_THROW(superdenseCoding<double>("0"), InvalidArgumentError);
  EXPECT_THROW(superdenseCoding<double>("012"), InvalidArgumentError);
}

class WStateSweep : public ::testing::TestWithParam<int> {};

TEST_P(WStateSweep, UniformSingleExcitationAmplitudes) {
  const int n = GetParam();
  const auto circuit = wState<double>(n);
  const auto state =
      circuit.simulate(std::string(static_cast<std::size_t>(n), '0')).state(0);
  const double expected = 1.0 / std::sqrt(static_cast<double>(n));
  for (std::size_t index = 0; index < state.size(); ++index) {
    // Single-excitation basis states have exactly one bit set.
    const bool singleExcitation =
        index != 0 && (index & (index - 1)) == 0;
    if (singleExcitation) {
      EXPECT_NEAR(std::abs(state[index]), expected, 1e-12) << index;
    } else {
      EXPECT_NEAR(std::abs(state[index]), 0.0, 1e-12) << index;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WStateSweep, ::testing::Range(2, 9));

TEST(WState, Validation) {
  EXPECT_THROW(wState<double>(1), InvalidArgumentError);
}

TEST(Entropy, PureAndMixedStates) {
  // Pure state: zero entropy.
  const auto pure = density::densityMatrix(basisState<double>("0"));
  EXPECT_NEAR(density::vonNeumannEntropy(pure), 0.0, 1e-10);
  // Maximally mixed qubit: 1 bit.
  auto mixed = dense::Matrix<double>::identity(2);
  mixed *= C(0.5);
  EXPECT_NEAR(density::vonNeumannEntropy(mixed), 1.0, 1e-12);
}

TEST(Entropy, BellStateHasOneBitAcrossTheCut) {
  const double h = 1.0 / std::sqrt(2.0);
  const std::vector<C> bell = {C(h), C(0), C(0), C(h)};
  EXPECT_NEAR(density::entanglementEntropy(bell, {0}), 1.0, 1e-11);
  EXPECT_NEAR(density::entanglementEntropy(bell, {1}), 1.0, 1e-11);
}

TEST(Entropy, ProductStateHasZeroEntanglement) {
  random::Rng rng(1);
  const auto a = qclab::test::randomState<double>(1, rng);
  const auto b = qclab::test::randomState<double>(1, rng);
  const auto product = dense::kron(a, b);
  EXPECT_NEAR(density::entanglementEntropy(product, {0}), 0.0, 1e-9);
}

TEST(Entropy, GhzCutsGiveOneBit) {
  const auto circuit = ghz<double>(4);
  const auto state = circuit.simulate("0000").state(0);
  // Any bipartition of a GHZ state carries exactly 1 bit.
  EXPECT_NEAR(density::entanglementEntropy(state, {0}), 1.0, 1e-10);
  EXPECT_NEAR(density::entanglementEntropy(state, {0, 1}), 1.0, 1e-10);
  EXPECT_NEAR(density::entanglementEntropy(state, {1, 3}), 1.0, 1e-10);
}

TEST(Entropy, WStateEntropyValue) {
  // W_n, single-qubit cut: eigenvalues {1/n, (n-1)/n}.
  const int n = 4;
  const auto circuit = wState<double>(n);
  const auto state = circuit.simulate("0000").state(0);
  const double p = 1.0 / n;
  const double expected =
      -p * std::log2(p) - (1 - p) * std::log2(1 - p);
  EXPECT_NEAR(density::entanglementEntropy(state, {0}), expected, 1e-10);
}

TEST(Schmidt, BellStateCoefficients) {
  const double h = 1.0 / std::sqrt(2.0);
  const std::vector<C> bell = {C(h), C(0), C(0), C(h)};
  const auto coefficients = density::schmidtCoefficients(bell, {0});
  ASSERT_EQ(coefficients.size(), 2u);
  EXPECT_NEAR(coefficients[0], h, 1e-11);
  EXPECT_NEAR(coefficients[1], h, 1e-11);
  EXPECT_EQ(density::schmidtRank(bell, {0}), 2);
}

TEST(Schmidt, ProductStateHasRankOne) {
  random::Rng rng(11);
  const auto a = qclab::test::randomState<double>(1, rng);
  const auto b = qclab::test::randomState<double>(2, rng);
  const auto product = dense::kron(a, b);
  EXPECT_EQ(density::schmidtRank(product, {0}), 1);
  const auto coefficients = density::schmidtCoefficients(product, {0});
  EXPECT_NEAR(coefficients[0], 1.0, 1e-10);
}

TEST(Schmidt, CoefficientsSquareToOneAndSortDescending) {
  random::Rng rng(12);
  const auto state = qclab::test::randomState<double>(4, rng);
  const auto coefficients = density::schmidtCoefficients(state, {0, 2});
  double sum = 0.0;
  for (std::size_t i = 0; i < coefficients.size(); ++i) {
    sum += coefficients[i] * coefficients[i];
    if (i > 0) EXPECT_LE(coefficients[i], coefficients[i - 1] + 1e-12);
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(Schmidt, EntropyConsistency) {
  // -sum lambda^2 log2 lambda^2 equals the entanglement entropy.
  const auto state = wState<double>(4).simulate("0000").state(0);
  const auto coefficients = density::schmidtCoefficients(state, {0, 1});
  double entropy = 0.0;
  for (double value : coefficients) {
    const double p = value * value;
    if (p > 0) entropy -= p * std::log2(p);
  }
  EXPECT_NEAR(entropy, density::entanglementEntropy(state, {0, 1}), 1e-9);
}

TEST(Schmidt, Validation) {
  const auto state = basisState<double>("00");
  EXPECT_THROW(density::schmidtCoefficients(state, {}),
               InvalidArgumentError);
  EXPECT_THROW(density::schmidtCoefficients(state, {0, 1}),
               InvalidArgumentError);
}

TEST(EqualUpToGlobalPhase, Matrices) {
  random::Rng rng(2);
  const auto u = qclab::test::randomUnitary1<double>(rng);
  const auto phased = u * std::polar(1.0, 0.77);
  EXPECT_TRUE(dense::equalUpToGlobalPhase(u, phased, 1e-12));
  EXPECT_TRUE(dense::equalUpToGlobalPhase(u, u, 1e-12));
  auto different = u;
  different(0, 0) += C(0.2);
  EXPECT_FALSE(dense::equalUpToGlobalPhase(u, different, 1e-6));
  EXPECT_FALSE(dense::equalUpToGlobalPhase(
      u, dense::Matrix<double>::identity(4), 1e-6));
}

}  // namespace
}  // namespace qclab::algorithms

#pragma once

/// \file test_helpers.hpp
/// \brief Shared helpers for the test suite: tolerances, matrix comparison,
/// random unitaries, and a random-circuit generator used by the
/// backend-equivalence and transpiler property tests.

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "qclab/qclab.hpp"

namespace qclab::test {

/// Comparison tolerance per scalar type.
template <typename T>
constexpr T tol() {
  return T(1e5) * std::numeric_limits<T>::epsilon();  // ~2e-11 for double
}

/// EXPECT that two matrices match entrywise within `tolerance`.
template <typename T>
void expectMatrixNear(const dense::Matrix<T>& a, const dense::Matrix<T>& b,
                      T tolerance = tol<T>()) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_LE(a.distanceMax(b), tolerance)
      << "matrices differ by " << a.distanceMax(b);
}

/// EXPECT that two state vectors match entrywise within `tolerance`.
template <typename T>
void expectStateNear(const std::vector<std::complex<T>>& a,
                     const std::vector<std::complex<T>>& b,
                     T tolerance = tol<T>()) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LE(dense::distanceMax(a, b), tolerance)
      << "states differ by " << dense::distanceMax(a, b);
}

/// Random single-qubit unitary (exactly unitary by construction:
/// phase * U3 matrix).
template <typename T>
dense::Matrix<T> randomUnitary1(random::Rng& rng) {
  const T theta = static_cast<T>(rng.uniform(0.0, 2.0 * M_PI));
  const T phi = static_cast<T>(rng.uniform(0.0, 2.0 * M_PI));
  const T lambda = static_cast<T>(rng.uniform(0.0, 2.0 * M_PI));
  auto u = qgates::U3<T>(0, theta, phi, lambda).matrix();
  const auto phase =
      std::polar(T(1), static_cast<T>(rng.uniform(0.0, 2.0 * M_PI)));
  return u * phase;
}

/// Random normalized state vector on `nbQubits` qubits.
template <typename T>
std::vector<std::complex<T>> randomState(int nbQubits, random::Rng& rng) {
  std::vector<std::complex<T>> state(std::size_t{1} << nbQubits);
  for (auto& amplitude : state) {
    amplitude = std::complex<T>(static_cast<T>(rng.normal()),
                                static_cast<T>(rng.normal()));
  }
  const T norm = dense::norm2(state);
  for (auto& amplitude : state) amplitude /= norm;
  return state;
}

/// Appends `length` random gates drawn from the full gate catalog to
/// `circuit` (no measurements/resets).
template <typename T>
void addRandomGates(QCircuit<T>& circuit, int length, random::Rng& rng) {
  using namespace qclab::qgates;
  const int n = circuit.nbQubits();
  auto randomQubit = [&]() { return static_cast<int>(rng.uniformInt(n)); };
  auto distinctPair = [&]() {
    const int q0 = randomQubit();
    int q1 = randomQubit();
    while (q1 == q0) q1 = randomQubit();
    return std::pair<int, int>{q0, q1};
  };
  auto angle = [&]() { return static_cast<T>(rng.uniform(-M_PI, M_PI)); };

  for (int i = 0; i < length; ++i) {
    // Single-qubit registers can only draw single-qubit gate kinds
    // (0-11 and the MatrixGate1 kind 18); MCX (kind 19) needs >= 3 qubits.
    std::uint64_t kind;
    if (n == 1) {
      kind = rng.uniformInt(13);
      if (kind == 12) kind = 18;
    } else {
      kind = rng.uniformInt(n >= 3 ? 20 : 19);
    }
    switch (kind) {
      case 0: circuit.push_back(Hadamard<T>(randomQubit())); break;
      case 1: circuit.push_back(PauliX<T>(randomQubit())); break;
      case 2: circuit.push_back(PauliY<T>(randomQubit())); break;
      case 3: circuit.push_back(PauliZ<T>(randomQubit())); break;
      case 4: circuit.push_back(SGate<T>(randomQubit())); break;
      case 5: circuit.push_back(TGate<T>(randomQubit())); break;
      case 6: circuit.push_back(SX<T>(randomQubit())); break;
      case 7: circuit.push_back(Phase<T>(randomQubit(), angle())); break;
      case 8: circuit.push_back(RotationX<T>(randomQubit(), angle())); break;
      case 9: circuit.push_back(RotationY<T>(randomQubit(), angle())); break;
      case 10: circuit.push_back(RotationZ<T>(randomQubit(), angle())); break;
      case 11:
        circuit.push_back(
            U3<T>(randomQubit(), angle(), angle(), angle()));
        break;
      case 12: {
        const auto [q0, q1] = distinctPair();
        circuit.push_back(CX<T>(q0, q1, static_cast<int>(rng.uniformInt(2))));
        break;
      }
      case 13: {
        const auto [q0, q1] = distinctPair();
        circuit.push_back(CZ<T>(q0, q1));
        break;
      }
      case 14: {
        const auto [q0, q1] = distinctPair();
        circuit.push_back(CPhase<T>(q0, q1, angle()));
        break;
      }
      case 15: {
        const auto [q0, q1] = distinctPair();
        circuit.push_back(SWAP<T>(q0, q1));
        break;
      }
      case 16: {
        const auto [q0, q1] = distinctPair();
        circuit.push_back(iSWAP<T>(q0, q1));
        break;
      }
      case 17: {
        const auto [q0, q1] = distinctPair();
        circuit.push_back(RotationZZ<T>(q0, q1, angle()));
        break;
      }
      case 18:
        circuit.push_back(
            MatrixGate1<T>(randomQubit(), randomUnitary1<T>(rng)));
        break;
      case 19: {
        // Toffoli-like MCX with random control states (needs >= 3 qubits).
        int q0 = randomQubit(), q1 = randomQubit(), q2 = randomQubit();
        while (q1 == q0) q1 = randomQubit();
        while (q2 == q0 || q2 == q1) q2 = randomQubit();
        circuit.push_back(
            MCX<T>({q0, q1}, q2,
                   {static_cast<int>(rng.uniformInt(2)),
                    static_cast<int>(rng.uniformInt(2))}));
        break;
      }
      default: break;
    }
  }
}

/// A random `length`-gate circuit on `nbQubits` qubits.
template <typename T>
QCircuit<T> randomCircuit(int nbQubits, int length, std::uint64_t seed) {
  random::Rng rng(seed);
  QCircuit<T> circuit(nbQubits);
  addRandomGates(circuit, length, rng);
  return circuit;
}

}  // namespace qclab::test

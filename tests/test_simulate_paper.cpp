/// \file test_simulate_paper.cpp
/// \brief Every concrete numeric result reported in the paper, as tests:
/// E1 (§3.3 Bell measurement), E2 (§5.1 teleportation), E3 (§5.2
/// tomography), E4 (§5.3 Grover), E5 (§5.4 error correction).

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using C = std::complex<double>;
using namespace qclab::qgates;

/// The state v = (1/sqrt(2), i/sqrt(2)) used throughout the paper.
std::vector<C> paperV() {
  const double h = 1.0 / std::sqrt(2.0);
  return {C(h, 0.0), C(0.0, h)};
}

// ---- E1: circuit (1), paper §2-§3.3 ---------------------------------------

TEST(PaperE1, BellCircuitResultsAndProbabilities) {
  QCircuit<double> circuit(2);
  circuit.push_back(std::make_unique<Hadamard<double>>(0));
  circuit.push_back(std::make_unique<CNOT<double>>(0, 1));
  circuit.push_back(std::make_unique<Measurement<double>>(0));
  circuit.push_back(std::make_unique<Measurement<double>>(1));

  const auto simulation = circuit.simulate("00");
  ASSERT_EQ(simulation.results(), (std::vector<std::string>{"00", "11"}));
  EXPECT_NEAR(simulation.probability(0), 0.5, 1e-14);
  EXPECT_NEAR(simulation.probability(1), 0.5, 1e-14);
}

TEST(PaperE1, VectorInitialStateEquivalent) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  // Paper §3.1: simulate([1;0;0;0]) equals simulate('00').
  std::vector<C> initial = {C(1), C(0), C(0), C(0)};
  const auto a = circuit.simulate(initial);
  const auto b = circuit.simulate("00");
  ASSERT_EQ(a.nbBranches(), b.nbBranches());
  for (std::size_t i = 0; i < a.nbBranches(); ++i) {
    EXPECT_EQ(a.result(i), b.result(i));
    EXPECT_NEAR(a.probability(i), b.probability(i), 1e-14);
  }
}

// ---- E2: quantum teleportation, paper §5.1 --------------------------------

TEST(PaperE2, FourOutcomesAtQuarterProbability) {
  const auto qtc = algorithms::teleportationCircuit<double>();
  const auto simulation =
      qtc.simulate(algorithms::teleportationInput(paperV()));
  ASSERT_EQ(simulation.results(),
            (std::vector<std::string>{"00", "01", "10", "11"}));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(simulation.probability(i), 0.25, 1e-12);
  }
}

TEST(PaperE2, ReducedStateOfQubit2IsV) {
  const auto v = paperV();
  const auto qtc = algorithms::teleportationCircuit<double>();
  const auto simulation = qtc.simulate(algorithms::teleportationInput(v));
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    const auto reduced =
        reducedStatevector<double>(simulation.state(i), {0, 1},
                                   simulation.result(i));
    // Paper prints 0.7071 + 0.7071i exactly; our branches match v exactly
    // (no global phase ambiguity for this circuit).
    qclab::test::expectStateNear(reduced, v, 1e-12);
  }
}

TEST(PaperE2, TeleportsRandomStates) {
  random::Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const auto v = qclab::test::randomState<double>(1, rng);
    const auto qtc = algorithms::teleportationCircuit<double>();
    const auto simulation = qtc.simulate(algorithms::teleportationInput(v));
    for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
      const auto reduced = reducedStatevector<double>(
          simulation.state(i), {0, 1}, simulation.result(i));
      EXPECT_TRUE(dense::equalUpToPhase(reduced, v, 1e-10));
    }
  }
}

TEST(PaperE2, StateForOutcome00MatchesPaper) {
  // The paper prints the full 8-vector for outcome '00': (v0, v1, 0, ..., 0)
  // pattern: qubits 0, 1 collapsed to |00>, qubit 2 carrying v.
  const auto v = paperV();
  const auto qtc = algorithms::teleportationCircuit<double>();
  const auto simulation = qtc.simulate(algorithms::teleportationInput(v));
  const auto& state = simulation.state(0);
  EXPECT_NEAR(std::abs(state[0] - v[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(state[1] - v[1]), 0.0, 1e-12);
  for (std::size_t i = 2; i < 8; ++i) {
    EXPECT_NEAR(std::abs(state[i]), 0.0, 1e-12);
  }
}

// ---- E3: quantum tomography, paper §5.2 ------------------------------------

TEST(PaperE3, BasisProbabilitiesOfV) {
  // For v = (1, i)/sqrt(2): Px(0) = 0.5, Py(0) = 1, Pz(0) = 0.5.
  const auto v = paperV();
  for (const auto& [basis, expected] :
       std::vector<std::pair<char, double>>{{'x', 0.5}, {'y', 1.0},
                                            {'z', 0.5}}) {
    QCircuit<double> circuit(1);
    circuit.push_back(Measurement<double>(0, basis));
    const auto simulation = circuit.simulate(v);
    double p0 = 0.0;
    for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
      if (simulation.result(i) == "0") p0 = simulation.probability(i);
    }
    EXPECT_NEAR(p0, expected, 1e-12) << "basis " << basis;
  }
}

TEST(PaperE3, TomographyReconstructsV) {
  const auto v = paperV();
  const auto result = algorithms::tomography1Qubit(v, 1000, 1);

  // S0 = 1 always; S2 ~ 1 (exact: Y-measurement of a Y eigenstate),
  // S1, S3 ~ 0 with O(1/sqrt(shots)) noise.
  EXPECT_NEAR(result.coefficients[0], 1.0, 1e-15);
  EXPECT_NEAR(result.coefficients[1], 0.0, 0.1);
  EXPECT_NEAR(result.coefficients[2], 1.0, 1e-12);
  EXPECT_NEAR(result.coefficients[3], 0.0, 0.1);

  // Counts sum to the shot budget per basis.
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(result.counts[b][0] + result.counts[b][1], 1000u);
  }

  // Trace distance to the true density matrix is small (paper: 0.006).
  const auto trueRho = density::densityMatrix(v);
  const double distance = density::traceDistance(trueRho, result.estimate);
  EXPECT_LT(distance, 0.05);
  EXPECT_GT(density::fidelity(trueRho, result.estimate), 0.99);
}

TEST(PaperE3, TomographyConvergesWithShots) {
  const auto v = paperV();
  const auto trueRho = density::densityMatrix(v);
  const double coarse = density::traceDistance(
      trueRho, algorithms::tomography1Qubit(v, 100, 3).estimate);
  const double fine = density::traceDistance(
      trueRho, algorithms::tomography1Qubit(v, 100000, 3).estimate);
  EXPECT_LT(fine, 0.01);
  EXPECT_LT(fine, coarse + 1e-12);
}

// ---- E4: Grover, paper §5.3 -------------------------------------------------

TEST(PaperE4, TwoQubitGroverFinds11WithCertainty) {
  // Built exactly as in the paper, from oracle and diffuser sub-circuits.
  QCircuit<double> oracle(2);
  oracle.push_back(CZ<double>(0, 1));

  QCircuit<double> diffuser(2);
  diffuser.push_back(Hadamard<double>(0));
  diffuser.push_back(Hadamard<double>(1));
  diffuser.push_back(PauliZ<double>(0));
  diffuser.push_back(PauliZ<double>(1));
  diffuser.push_back(CZ<double>(0, 1));
  diffuser.push_back(Hadamard<double>(0));
  diffuser.push_back(Hadamard<double>(1));

  oracle.asBlock("oracle");
  diffuser.asBlock("diffuser");

  QCircuit<double> gc(2);
  gc.push_back(Hadamard<double>(0));
  gc.push_back(Hadamard<double>(1));
  gc.push_back(QCircuit<double>(oracle));
  gc.push_back(QCircuit<double>(diffuser));
  gc.push_back(Measurement<double>(0));
  gc.push_back(Measurement<double>(1));

  const auto simulation = gc.simulate("00");
  ASSERT_EQ(simulation.results(), std::vector<std::string>{"11"});
  EXPECT_NEAR(simulation.probability(0), 1.0, 1e-12);
}

TEST(PaperE4, LibraryGroverMatchesPaperConstruction) {
  const auto circuit = algorithms::grover<double>("11", 1);
  const auto simulation = circuit.simulate("00");
  ASSERT_EQ(simulation.results(), std::vector<std::string>{"11"});
  EXPECT_NEAR(simulation.probability(0), 1.0, 1e-12);
}

TEST(PaperE4, SuccessProbabilityMatchesAnalyticFormula) {
  for (int n = 2; n <= 5; ++n) {
    const std::string marked(static_cast<std::size_t>(n), '1');
    for (int iterations = 1; iterations <= 3; ++iterations) {
      const auto circuit = algorithms::grover<double>(marked, iterations);
      const auto simulation =
          circuit.simulate(std::string(static_cast<std::size_t>(n), '0'));
      double success = 0.0;
      for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
        if (simulation.result(i) == marked) {
          success = simulation.probability(i);
        }
      }
      EXPECT_NEAR(success,
                  algorithms::groverSuccessProbability(n, iterations), 1e-10)
          << "n=" << n << " iterations=" << iterations;
    }
  }
}

TEST(PaperE4, ArbitraryMarkedStates) {
  for (const std::string marked : {"00", "01", "10", "101", "0110"}) {
    const int n = static_cast<int>(marked.size());
    const int iterations = algorithms::groverIterations(n);
    const auto circuit = algorithms::grover<double>(marked, iterations);
    const auto simulation =
        circuit.simulate(std::string(static_cast<std::size_t>(n), '0'));
    double success = 0.0;
    for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
      if (simulation.result(i) == marked) success = simulation.probability(i);
    }
    EXPECT_GT(success, 0.75) << "marked " << marked;
  }
}

// ---- E5: quantum error correction, paper §5.4 --------------------------------

std::vector<C> qecInitialState() {
  const auto v = paperV();
  return dense::kron(v, basisState<double>("0000"));
}

TEST(PaperE5, SyndromeIs11ForErrorOnQubit0) {
  const auto qec = algorithms::repetitionCodeDemo<double>(0);
  const auto simulation = qec.simulate(qecInitialState());
  ASSERT_EQ(simulation.results(), std::vector<std::string>{"11"});
  EXPECT_NEAR(simulation.probability(0), 1.0, 1e-12);
}

TEST(PaperE5, LogicalStateRestored) {
  const auto v = paperV();
  const auto qec = algorithms::repetitionCodeDemo<double>(0);
  const auto simulation = qec.simulate(qecInitialState());
  // Reduce over the measured ancillas: data qubits carry
  // alpha|000> + beta|111>.
  const auto data = reducedStatevector<double>(simulation.state(0), {3, 4},
                                               simulation.result(0));
  ASSERT_EQ(data.size(), 8u);
  EXPECT_NEAR(std::abs(data[0] - v[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(data[7] - v[1]), 0.0, 1e-12);
  for (std::size_t i = 1; i < 7; ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-12);
  }
}

class QecErrorLocationSweep : public ::testing::TestWithParam<int> {};

TEST_P(QecErrorLocationSweep, CorrectsEverySingleBitFlip) {
  const int errorQubit = GetParam();
  const auto v = paperV();
  const auto qec = algorithms::repetitionCodeDemo<double>(errorQubit);
  const auto simulation = qec.simulate(qecInitialState());
  ASSERT_EQ(simulation.nbBranches(), 1u);
  EXPECT_EQ(simulation.result(0),
            algorithms::expectedSyndrome(errorQubit));
  const auto data = reducedStatevector<double>(simulation.state(0), {3, 4},
                                               simulation.result(0));
  EXPECT_NEAR(std::abs(data[0] - v[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(data[7] - v[1]), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(ErrorLocations, QecErrorLocationSweep,
                         ::testing::Values(-1, 0, 1, 2));

TEST(PaperE5, RandomStatesProtected) {
  random::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const auto v = qclab::test::randomState<double>(1, rng);
    const auto initial = dense::kron(v, basisState<double>("0000"));
    for (int errorQubit = 0; errorQubit <= 2; ++errorQubit) {
      const auto qec = algorithms::repetitionCodeDemo<double>(errorQubit);
      const auto simulation = qec.simulate(initial);
      ASSERT_EQ(simulation.nbBranches(), 1u);
      const auto data = reducedStatevector<double>(
          simulation.state(0), {3, 4}, simulation.result(0));
      EXPECT_NEAR(std::abs(data[0] - v[0]), 0.0, 1e-10);
      EXPECT_NEAR(std::abs(data[7] - v[1]), 0.0, 1e-10);
    }
  }
}

}  // namespace
}  // namespace qclab

/// \file test_kernels.cpp
/// \brief Unit tests for the in-place gate-application kernels against
/// dense Kronecker-product references.

#include <gtest/gtest.h>

#include "qclab/dense/ops.hpp"
#include "qclab/qgates/qgates.hpp"
#include "qclab/sim/kernels.hpp"
#include "test_helpers.hpp"

namespace qclab::sim {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

/// Dense reference: embeds `u` acting on (sorted, MSB-first) `qubits` of an
/// n-qubit register via Kronecker products and permutation-free expansion.
M embedDense(int nbQubits, const std::vector<int>& qubits, const M& u) {
  // Build via controlledMatrix with no controls over the full register:
  // treat all non-gate qubits as extra "targets" of an identity? Simpler:
  // start from u and kron with identities, then fix ordering via explicit
  // index mapping.
  const std::size_t dim = std::size_t{1} << nbQubits;
  const int k = static_cast<int>(qubits.size());
  M full(dim, dim);
  for (util::index_t row = 0; row < dim; ++row) {
    // Gate-subspace index of this row.
    util::index_t gateRow = 0;
    for (int i = 0; i < k; ++i) {
      gateRow = (gateRow << 1) |
                util::getBit(row, util::bitPosition(qubits[i], nbQubits));
    }
    for (util::index_t gateCol = 0; gateCol < (util::index_t{1} << k);
         ++gateCol) {
      const C value = u(gateRow, gateCol);
      if (value == C(0)) continue;
      util::index_t col = row;
      for (int i = 0; i < k; ++i) {
        const int pos = util::bitPosition(qubits[i], nbQubits);
        col = util::getBit(gateCol, util::bitPosition(i, k))
                  ? util::setBit(col, pos)
                  : util::clearBit(col, pos);
      }
      full(row, col) = value;
    }
  }
  return full;
}

TEST(Kernels, Apply1MatchesKron) {
  const int n = 4;
  random::Rng rng(1);
  const auto u = qclab::test::randomUnitary1<double>(rng);
  for (int qubit = 0; qubit < n; ++qubit) {
    auto state = qclab::test::randomState<double>(n, rng);
    const auto expected = embedDense(n, {qubit}, u).apply(state);
    apply1(state, n, qubit, u);
    qclab::test::expectStateNear(state, expected);
  }
}

TEST(Kernels, Apply1SingleQubitRegister) {
  const auto h = qgates::Hadamard<double>(0).matrix();
  std::vector<C> state = {C(1), C(0)};
  apply1(state, 1, 0, h);
  const double invSqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(state[0] - C(invSqrt2)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(state[1] - C(invSqrt2)), 0.0, 1e-15);
}

TEST(Kernels, Apply1Validation) {
  std::vector<C> state(4);
  EXPECT_THROW(apply1(state, 2, 2, M::identity(2)), QubitRangeError);
  EXPECT_THROW(apply1(state, 2, -1, M::identity(2)), QubitRangeError);
  EXPECT_THROW(apply1(state, 2, 0, M::identity(4)), InvalidArgumentError);
}

TEST(Kernels, ApplyDiagonal1MatchesApply1) {
  const int n = 3;
  random::Rng rng(2);
  const auto rz = qgates::RotationZ<double>(0, 0.77).matrix();
  for (int qubit = 0; qubit < n; ++qubit) {
    auto stateA = qclab::test::randomState<double>(n, rng);
    auto stateB = stateA;
    apply1(stateA, n, qubit, rz);
    applyDiagonal1(stateB, n, qubit, rz(0, 0), rz(1, 1));
    qclab::test::expectStateNear(stateA, stateB);
  }
}

TEST(Kernels, ApplyControlled1MatchesEmbeddedMatrix) {
  const int n = 4;
  random::Rng rng(3);
  const auto u = qclab::test::randomUnitary1<double>(rng);
  for (int control = 0; control < n; ++control) {
    for (int target = 0; target < n; ++target) {
      if (control == target) continue;
      for (int controlState : {0, 1}) {
        auto state = qclab::test::randomState<double>(n, rng);
        const qgates::QControlledGate2<double>* gate = nullptr;
        // Build reference through controlledMatrix + embedDense.
        const auto gateMatrix = qgates::controlledMatrix<double>(
            {std::min(control, target), std::max(control, target)}, {control},
            {controlState}, {target}, u);
        (void)gate;
        const auto expected =
            embedDense(n, {std::min(control, target), std::max(control, target)},
                       gateMatrix)
                .apply(state);
        applyControlled1(state, n, {control}, {controlState}, target, u);
        qclab::test::expectStateNear(state, expected);
      }
    }
  }
}

TEST(Kernels, ApplyControlled1MultipleControls) {
  const int n = 5;
  random::Rng rng(4);
  auto state = qclab::test::randomState<double>(n, rng);
  auto expectedState = state;
  // MCX({0, 3}, 2, {1, 0}) via the kernel and via the gate matrix.
  const qgates::MCX<double> gate({0, 3}, 2, {1, 0});
  const auto full = embedDense(n, gate.qubits(), gate.matrix());
  expectedState = full.apply(expectedState);
  applyControlled1(state, n, {0, 3}, {1, 0}, 2, dense::pauliX<double>());
  qclab::test::expectStateNear(state, expectedState);
}

TEST(Kernels, ApplySwapMatchesMatrix) {
  const int n = 4;
  random::Rng rng(5);
  for (int q0 = 0; q0 < n; ++q0) {
    for (int q1 = q0 + 1; q1 < n; ++q1) {
      auto state = qclab::test::randomState<double>(n, rng);
      const auto expected =
          embedDense(n, {q0, q1}, qgates::SWAP<double>(0, 1).matrix())
              .apply(state);
      applySwap(state, n, q0, q1);
      qclab::test::expectStateNear(state, expected);
    }
  }
}

TEST(Kernels, ApplyKMatchesEmbeddedMatrix) {
  const int n = 5;
  random::Rng rng(6);
  // Random 2-qubit unitary on every ascending pair (contiguous or not).
  const auto u = QCircuit<double>(2).matrix();  // identity to start
  for (int q0 = 0; q0 < n; ++q0) {
    for (int q1 = q0 + 1; q1 < n; ++q1) {
      auto circuit = qclab::test::randomCircuit<double>(2, 6, 100 + q0 * n + q1);
      const auto gateMatrix = circuit.matrix();
      auto state = qclab::test::randomState<double>(n, rng);
      const auto expected = embedDense(n, {q0, q1}, gateMatrix).apply(state);
      applyK(state, n, {q0, q1}, gateMatrix);
      qclab::test::expectStateNear(state, expected);
    }
  }
  (void)u;
}

TEST(Kernels, ApplyKThreeQubitsNonContiguous) {
  const int n = 6;
  random::Rng rng(7);
  auto circuit = qclab::test::randomCircuit<double>(3, 10, 11);
  const auto gateMatrix = circuit.matrix();
  auto state = qclab::test::randomState<double>(n, rng);
  const std::vector<int> qubits = {0, 2, 5};
  const auto expected = embedDense(n, qubits, gateMatrix).apply(state);
  applyK(state, n, qubits, gateMatrix);
  qclab::test::expectStateNear(state, expected);
}

TEST(Kernels, ApplyKValidation) {
  std::vector<C> state(8);
  EXPECT_THROW(applyK(state, 3, {1, 0}, M::identity(4)),
               InvalidArgumentError);
  EXPECT_THROW(applyK(state, 3, {0, 1}, M::identity(8)),
               InvalidArgumentError);
}

TEST(Kernels, ApplyDiagonalKMatchesApplyK) {
  const int n = 5;
  random::Rng rng(8);
  // Random diagonal unitary on a non-contiguous qubit triple.
  const std::vector<int> qubits = {0, 2, 4};
  std::vector<C> diagonal(8);
  M u(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    diagonal[i] = std::polar(1.0, rng.uniform(-M_PI, M_PI));
    u(i, i) = diagonal[i];
  }
  auto state = qclab::test::randomState<double>(n, rng);
  auto expected = state;
  applyK(expected, n, qubits, u);
  applyDiagonalK(state, n, qubits, diagonal);
  qclab::test::expectStateNear(state, expected);
}

TEST(Kernels, ApplyDiagonalKValidation) {
  std::vector<C> state(8);
  const std::vector<C> diag2 = {C(1), C(1)};
  const std::vector<C> diag4 = {C(1), C(1), C(1), C(1)};
  // Out-of-order and duplicate qubit lists must throw, like applyK.
  EXPECT_THROW(applyDiagonalK(state, 3, {1, 0}, diag4),
               InvalidArgumentError);
  EXPECT_THROW(applyDiagonalK(state, 3, {1, 1}, diag4),
               InvalidArgumentError);
  // Diagonal length must be 2^k.
  EXPECT_THROW(applyDiagonalK(state, 3, {0, 1}, diag2),
               InvalidArgumentError);
  EXPECT_NO_THROW(applyDiagonalK(state, 3, {0, 1}, diag4));
}

TEST(Kernels, ApplyControlledDiagonal1MatchesApplyControlled1) {
  const int n = 4;
  random::Rng rng(9);
  for (int control = 0; control < n; ++control) {
    for (int target = 0; target < n; ++target) {
      if (control == target) continue;
      for (int controlState : {0, 1}) {
        M u(2, 2);
        u(0, 0) = std::polar(1.0, rng.uniform(-M_PI, M_PI));
        u(1, 1) = std::polar(1.0, rng.uniform(-M_PI, M_PI));
        auto state = qclab::test::randomState<double>(n, rng);
        auto expected = state;
        applyControlled1(expected, n, {control}, {controlState}, target, u);
        applyControlledDiagonal1(state, n, {control}, {controlState}, target,
                                 u(0, 0), u(1, 1));
        qclab::test::expectStateNear(state, expected);
      }
    }
  }
}

TEST(Kernels, ApplyControlledDiagonal1MultipleControls) {
  const int n = 5;
  random::Rng rng(10);
  // Multi-controlled Z with mixed control states, against embedDense.
  const qgates::MCZ<double> gate({0, 3}, 2, {1, 0});
  auto state = qclab::test::randomState<double>(n, rng);
  auto expected = embedDense(n, gate.qubits(), gate.matrix()).apply(state);
  applyControlledDiagonal1(state, n, {0, 3}, {1, 0}, 2, C(1), C(-1));
  qclab::test::expectStateNear(state, expected);
}

TEST(Kernels, MeasureProbability0) {
  // |psi> = sqrt(0.3)|0> + sqrt(0.7)|1> on one qubit.
  std::vector<C> state = {C(std::sqrt(0.3)), C(std::sqrt(0.7))};
  EXPECT_NEAR(measureProbability0(state, 1, 0), 0.3, 1e-14);

  // Bell state: each qubit is 50/50.
  const double h = 1.0 / std::sqrt(2.0);
  std::vector<C> bell = {C(h), C(0), C(0), C(h)};
  EXPECT_NEAR(measureProbability0(bell, 2, 0), 0.5, 1e-14);
  EXPECT_NEAR(measureProbability0(bell, 2, 1), 0.5, 1e-14);
}

TEST(Kernels, CollapseNormalizesAndZeroes) {
  const double h = 1.0 / std::sqrt(2.0);
  std::vector<C> bell = {C(h), C(0), C(0), C(h)};
  collapse(bell, 2, 0, 1, 0.5);
  // Collapsed onto qubit0 = 1: state must be |11>.
  EXPECT_NEAR(std::abs(bell[3] - C(1)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(bell[0]), 0.0, 1e-14);
  EXPECT_NEAR(dense::norm2(bell), 1.0, 1e-14);
}

TEST(Kernels, CollapseValidation) {
  std::vector<C> state = {C(1), C(0)};
  EXPECT_THROW(collapse(state, 1, 0, 2, 0.5), InvalidArgumentError);
  EXPECT_THROW(collapse(state, 1, 0, 0, 0.0), InvalidArgumentError);
}

class Apply1QubitPositionSweep : public ::testing::TestWithParam<int> {};

TEST_P(Apply1QubitPositionSweep, NormPreservedOnLargerRegisters) {
  const int n = 10;
  const int qubit = GetParam();
  random::Rng rng(static_cast<std::uint64_t>(qubit) + 50);
  auto state = qclab::test::randomState<double>(n, rng);
  const auto u = qclab::test::randomUnitary1<double>(rng);
  apply1(state, n, qubit, u);
  EXPECT_NEAR(dense::norm2(state), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Positions, Apply1QubitPositionSweep,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace qclab::sim

/// \file test_eig.cpp
/// \brief Unit tests for the complex Hermitian Jacobi eigensolver.

#include <gtest/gtest.h>

#include "qclab/dense/eig.hpp"
#include "qclab/dense/ops.hpp"
#include "test_helpers.hpp"

namespace qclab::dense {
namespace {

using C = std::complex<double>;
using M = Matrix<double>;

M randomHermitian(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  M a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = C(rng.normal(), rng.normal());
    }
  }
  M h = a + a.dagger();
  h *= C(0.5);
  return h;
}

TEST(Eigh, DiagonalMatrix) {
  M d(3, 3);
  d(0, 0) = C(3);
  d(1, 1) = C(-1);
  d(2, 2) = C(2);
  const auto result = eigh(d);
  ASSERT_EQ(result.values.size(), 3u);
  EXPECT_NEAR(result.values[0], -1.0, 1e-12);
  EXPECT_NEAR(result.values[1], 2.0, 1e-12);
  EXPECT_NEAR(result.values[2], 3.0, 1e-12);
}

TEST(Eigh, PauliMatrices) {
  for (const auto& pauli :
       {pauliX<double>(), pauliY<double>(), pauliZ<double>()}) {
    const auto result = eigh(pauli);
    EXPECT_NEAR(result.values[0], -1.0, 1e-12);
    EXPECT_NEAR(result.values[1], 1.0, 1e-12);
  }
}

TEST(Eigh, EigenvaluesSortedAscending) {
  const auto result = eigh(randomHermitian(8, 1));
  for (std::size_t i = 1; i < result.values.size(); ++i) {
    EXPECT_LE(result.values[i - 1], result.values[i]);
  }
}

TEST(Eigh, TraceAndFrobeniusInvariants) {
  const auto a = randomHermitian(6, 2);
  const auto result = eigh(a);
  double sum = 0.0, sumSq = 0.0;
  for (double v : result.values) {
    sum += v;
    sumSq += v * v;
  }
  EXPECT_NEAR(sum, std::real(a.trace()), 1e-10);
  EXPECT_NEAR(std::sqrt(sumSq), a.normF(), 1e-10);
}

TEST(Eigh, Reconstruction) {
  const auto a = randomHermitian(5, 3);
  const auto result = eigh(a, /*computeVectors=*/true);
  // A == V diag(values) V^H.
  M lambda(5, 5);
  for (std::size_t i = 0; i < 5; ++i) lambda(i, i) = C(result.values[i]);
  const auto reconstructed =
      result.vectors * lambda * result.vectors.dagger();
  qclab::test::expectMatrixNear(reconstructed, a, 1e-10);
  // Eigenvectors are orthonormal.
  EXPECT_TRUE(result.vectors.isUnitary(1e-10));
}

TEST(Eigh, RejectsNonHermitian) {
  M a{{1, 2}, {3, 4}};
  EXPECT_THROW(eigh(a), qclab::InvalidArgumentError);
  EXPECT_THROW(eigh(M(2, 3)), qclab::InvalidArgumentError);
}

TEST(Eigh, OneByOne) {
  M a(1, 1);
  a(0, 0) = C(7);
  const auto result = eigh(a);
  ASSERT_EQ(result.values.size(), 1u);
  EXPECT_NEAR(result.values[0], 7.0, 1e-14);
}

class EighSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(EighSizeSweep, ReconstructsRandomHermitian) {
  const auto n = static_cast<std::size_t>(GetParam());
  const auto a = randomHermitian(n, 17 + n);
  const auto result = eigh(a, true);
  M lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) lambda(i, i) = C(result.values[i]);
  qclab::test::expectMatrixNear(result.vectors * lambda *
                                    result.vectors.dagger(),
                                a, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 16));

}  // namespace
}  // namespace qclab::dense

/// \file test_decompose.cpp
/// \brief Unit tests for the ZYZ decomposition of 2x2 unitaries.

#include <gtest/gtest.h>

#include "qclab/dense/decompose.hpp"
#include "qclab/qgates/qgates.hpp"
#include "test_helpers.hpp"

namespace qclab::dense {
namespace {

using C = std::complex<double>;
using M = Matrix<double>;

/// Reconstructs e^{i alpha} u3(theta, phi, lambda) and compares with U.
void expectZyzReconstructs(const M& u) {
  const auto euler = zyzDecompose(u);
  const auto u3 =
      qgates::U3<double>(0, euler.theta, euler.phi, euler.lambda).matrix();
  const auto reconstructed = u3 * std::polar(1.0, euler.alpha);
  qclab::test::expectMatrixNear(reconstructed, u, 1e-12);
}

TEST(Zyz, FixedGates) {
  expectZyzReconstructs(pauliI<double>());
  expectZyzReconstructs(pauliX<double>());
  expectZyzReconstructs(pauliY<double>());
  expectZyzReconstructs(pauliZ<double>());
  expectZyzReconstructs(qgates::Hadamard<double>(0).matrix());
  expectZyzReconstructs(qgates::SGate<double>(0).matrix());
  expectZyzReconstructs(qgates::TdgGate<double>(0).matrix());
  expectZyzReconstructs(qgates::SX<double>(0).matrix());
}

TEST(Zyz, RotationGates) {
  for (double theta : {0.0, 0.1, 1.5707, 3.1, -2.5}) {
    expectZyzReconstructs(qgates::RotationX<double>(0, theta).matrix());
    expectZyzReconstructs(qgates::RotationY<double>(0, theta).matrix());
    expectZyzReconstructs(qgates::RotationZ<double>(0, theta).matrix());
    expectZyzReconstructs(qgates::Phase<double>(0, theta).matrix());
  }
}

TEST(Zyz, ThetaInPrincipalRange) {
  random::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto u = qclab::test::randomUnitary1<double>(rng);
    const auto euler = zyzDecompose(u);
    EXPECT_GE(euler.theta, 0.0);
    EXPECT_LE(euler.theta, M_PI + 1e-12);
  }
}

TEST(Zyz, RejectsNonUnitary) {
  EXPECT_THROW(zyzDecompose(M{{1, 1}, {0, 1}}), qclab::InvalidArgumentError);
  EXPECT_THROW(zyzDecompose(M(3, 3)), qclab::InvalidArgumentError);
}

class ZyzRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(ZyzRandomSweep, ReconstructsRandomUnitaries) {
  random::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 20; ++i) {
    expectZyzReconstructs(qclab::test::randomUnitary1<double>(rng));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZyzRandomSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace qclab::dense

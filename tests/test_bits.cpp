/// \file test_bits.cpp
/// \brief Unit tests for the bit-manipulation and bitstring substrates.

#include <gtest/gtest.h>

#include "qclab/util/bits.hpp"
#include "qclab/util/bitstring.hpp"
#include "qclab/util/errors.hpp"

namespace qclab::util {
namespace {

TEST(Bits, GetSetClearFlip) {
  EXPECT_EQ(getBit(0b1010, 1), 1u);
  EXPECT_EQ(getBit(0b1010, 0), 0u);
  EXPECT_EQ(getBit(0b1010, 3), 1u);
  EXPECT_EQ(setBit(0b1010, 0), 0b1011u);
  EXPECT_EQ(setBit(0b1010, 1), 0b1010u);
  EXPECT_EQ(clearBit(0b1010, 1), 0b1000u);
  EXPECT_EQ(clearBit(0b1010, 0), 0b1010u);
  EXPECT_EQ(flipBit(0b1010, 2), 0b1110u);
  EXPECT_EQ(flipBit(0b1010, 1), 0b1000u);
}

TEST(Bits, BitPositionMsbFirst) {
  // Qubit 0 is the most significant bit.
  EXPECT_EQ(bitPosition(0, 3), 2);
  EXPECT_EQ(bitPosition(1, 3), 1);
  EXPECT_EQ(bitPosition(2, 3), 0);
  EXPECT_EQ(bitPosition(0, 1), 0);
}

TEST(Bits, InsertZeroBit) {
  // Insert at position 0: value shifts left, bit 0 becomes 0.
  EXPECT_EQ(insertZeroBit(0b101, 0), 0b1010u);
  // Insert in the middle.
  EXPECT_EQ(insertZeroBit(0b11, 1), 0b101u);
  // Insert above all bits: no change of value.
  EXPECT_EQ(insertZeroBit(0b11, 5), 0b11u);
}

TEST(Bits, InsertBitValue) {
  EXPECT_EQ(insertBit(0b11, 1, 1), 0b111u);
  EXPECT_EQ(insertBit(0b11, 1, 0), 0b101u);
  EXPECT_EQ(insertBit(0, 0, 1), 1u);
}

TEST(Bits, InsertRemoveRoundTrip) {
  for (index_t i = 0; i < 64; ++i) {
    for (int pos = 0; pos < 8; ++pos) {
      EXPECT_EQ(removeBit(insertZeroBit(i, pos), pos), i);
      EXPECT_EQ(removeBit(insertBit(i, pos, 1), pos), i);
    }
  }
}

TEST(Bits, InsertZeroBitsMultiple) {
  // Positions ascending, in final-index coordinates.
  const std::vector<int> positions = {1, 3};
  // 0b11 -> insert 0 at 1 -> 0b101 -> insert 0 at 3 -> 0b0101.
  EXPECT_EQ(insertZeroBits(0b11, positions), 0b0101u);
}

TEST(Bits, InsertZeroBitEnumeratesComplement) {
  // Inserting a zero bit at `pos` enumerates exactly the indices with that
  // bit cleared, in increasing order and without repetition.
  const int pos = 2;
  std::vector<index_t> seen;
  for (index_t base = 0; base < 8; ++base) {
    seen.push_back(insertZeroBit(base, pos));
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(getBit(seen[i], pos), 0u);
    if (i > 0) EXPECT_LT(seen[i - 1], seen[i]);
  }
}

TEST(Bits, InsertZeroBitTopEdges) {
  // pos == 63: the shifted-up bits fall off the 64-bit top; only the low
  // 63 bits of the input survive (previously UB via a shift by 64).
  const index_t low63 = (index_t{1} << 63) - 1;
  EXPECT_EQ(insertZeroBit(~index_t{0}, 63), low63);
  EXPECT_EQ(insertZeroBit(low63, 63), low63);
  EXPECT_EQ(insertZeroBit(index_t{1} << 63, 63), 0u);
  // pos >= 64: insertion above every representable bit is a no-op.
  EXPECT_EQ(insertZeroBit(~index_t{0}, 64), ~index_t{0});
  EXPECT_EQ(insertZeroBit(0b1010u, 100), 0b1010u);
}

TEST(Bits, InsertBitTopEdges) {
  const index_t low63 = (index_t{1} << 63) - 1;
  EXPECT_EQ(insertBit(0, 63, 1), index_t{1} << 63);
  EXPECT_EQ(insertBit(low63, 63, 1), ~index_t{0});
  // A value inserted at pos >= 64 is dropped.
  EXPECT_EQ(insertBit(0b11u, 64, 1), 0b11u);
}

TEST(Bits, RemoveBitTopEdges) {
  // pos == 63 removes the topmost bit; pos >= 64 removes nothing.
  EXPECT_EQ(removeBit(~index_t{0}, 63), (index_t{1} << 63) - 1);
  EXPECT_EQ(removeBit(index_t{1} << 63, 63), 0u);
  EXPECT_EQ(removeBit(0b1010u, 64), 0b1010u);
  // Round trip still holds at the top edge.
  const index_t low63 = (index_t{1} << 63) - 1;
  EXPECT_EQ(removeBit(insertZeroBit(low63, 63), 63), low63);
}

TEST(Bits, PowerOfTwo) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_TRUE(isPowerOfTwo(1024));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_FALSE(isPowerOfTwo(1023));
  EXPECT_EQ(log2PowerOfTwo(1), 0);
  EXPECT_EQ(log2PowerOfTwo(2), 1);
  EXPECT_EQ(log2PowerOfTwo(1024), 10);
  EXPECT_EQ(log2PowerOfTwo(index_t{1} << 63), 63);
  // 0 has no logarithm; the old code silently returned 0.
  EXPECT_THROW(log2PowerOfTwo(0), InvalidArgumentError);
}

TEST(Bitstring, ToIndexMsbFirst) {
  EXPECT_EQ(bitstringToIndex("0"), 0u);
  EXPECT_EQ(bitstringToIndex("1"), 1u);
  EXPECT_EQ(bitstringToIndex("10"), 2u);
  EXPECT_EQ(bitstringToIndex("01"), 1u);
  EXPECT_EQ(bitstringToIndex("110"), 6u);
  EXPECT_EQ(bitstringToIndex("00000"), 0u);
}

TEST(Bitstring, ToIndexValidation) {
  EXPECT_THROW(bitstringToIndex("012"), InvalidArgumentError);
  EXPECT_THROW(bitstringToIndex("ab"), InvalidArgumentError);
  EXPECT_THROW(bitstringToIndex("01", 3), InvalidArgumentError);
  EXPECT_NO_THROW(bitstringToIndex("01", 2));
}

TEST(Bitstring, IndexToBitstring) {
  EXPECT_EQ(indexToBitstring(0, 3), "000");
  EXPECT_EQ(indexToBitstring(6, 3), "110");
  EXPECT_EQ(indexToBitstring(1, 1), "1");
  EXPECT_EQ(indexToBitstring(5, 4), "0101");
}

TEST(Bitstring, RoundTrip) {
  for (index_t i = 0; i < 256; ++i) {
    EXPECT_EQ(bitstringToIndex(indexToBitstring(i, 8)), i);
  }
}

TEST(Bitstring, IsBitstring) {
  EXPECT_TRUE(isBitstring("0101"));
  EXPECT_TRUE(isBitstring(""));
  EXPECT_FALSE(isBitstring("01a"));
  EXPECT_FALSE(isBitstring(" 01"));
}

class InsertBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(InsertBitSweep, AllPositionsPreserveOtherBits) {
  const int pos = GetParam();
  for (index_t i = 0; i < 128; ++i) {
    const index_t inserted = insertZeroBit(i, pos);
    // Bits below pos unchanged; bits at/above pos shifted by one.
    const index_t low = i & ((index_t{1} << pos) - 1);
    EXPECT_EQ(inserted & ((index_t{1} << pos) - 1), low);
    EXPECT_EQ(inserted >> (pos + 1), i >> pos);
    EXPECT_EQ(getBit(inserted, pos), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Positions, InsertBitSweep,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace qclab::util

/// \file test_profiler.cpp
/// \brief Sampling-profiler tests: SIGPROF samples attribute to the live
/// stage-span stack and kernel path, collapsed-stack rendering and file
/// export, start/stop/reset state discipline, and the no-op surface when
/// the profiler is unavailable.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "qclab/qclab.hpp"

using qclab::obs::profiler;

namespace {

/// Burns CPU (not wall clock: ITIMER_PROF counts CPU time) for roughly
/// `ms` milliseconds.
void burnCpuMs(int ms) {
  volatile double sink = 1.0;
  const auto begin = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - begin)
             .count() < ms) {
    for (int i = 0; i < 4096; ++i) sink = sink * 1.0000001 + 0.0000001;
  }
  (void)sink;
}

}  // namespace

#ifdef QCLAB_OBS_PROFILER_POSIX

TEST(Profiler, SamplesAttributeToSpansAndPaths) {
  ASSERT_TRUE(profiler().reset());
  ASSERT_TRUE(profiler().start(997));
  {
    qclab::obs::ScopedSpan span("profiler-test-span");
    qclab::obs::PathTimer timer(qclab::sim::KernelPath::kDense1);
    burnCpuMs(300);
  }
  profiler().stop();

  if (profiler().samples() == 0) {
    GTEST_SKIP() << "no SIGPROF delivery in this environment";
  }
  EXPECT_GE(profiler().distinctStacks(), 1u);

  const auto folded = profiler().folded();
  bool sawSpan = false;
  for (const auto& [stack, count] : folded) {
    EXPECT_GT(count, 0u);
    if (stack.find("profiler-test-span") != std::string::npos) {
      sawSpan = true;
      EXPECT_NE(stack.find("path:dense1"), std::string::npos)
          << "sample under a PathTimer lost its path: " << stack;
    }
  }
  EXPECT_TRUE(sawSpan) << "no sample landed inside the busy span";
}

TEST(Profiler, CollapsedRendersOneStackPerLine) {
  // Reuses whatever the previous test collected; collect again if the
  // table is empty (e.g. when tests are sharded).
  if (profiler().samples() == 0) {
    ASSERT_TRUE(profiler().reset());
    ASSERT_TRUE(profiler().start(997));
    {
      qclab::obs::ScopedSpan span("collapsed-span");
      burnCpuMs(200);
    }
    profiler().stop();
  }
  if (profiler().samples() == 0) {
    GTEST_SKIP() << "no SIGPROF delivery in this environment";
  }

  const std::string collapsed = profiler().collapsed();
  ASSERT_FALSE(collapsed.empty());
  std::istringstream lines(collapsed);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    // "frame;frame;path:name 42" — ends in a positive count.
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    ++parsed;
  }
  EXPECT_GE(parsed, 1u);
}

TEST(Profiler, WriteCollapsedCreatesTheFile) {
  const std::string path = "qclab-profiler-test.folded";
  ASSERT_TRUE(profiler().writeCollapsed(path));
  std::ifstream file(path);
  EXPECT_TRUE(file.good());
  file.close();
  std::remove(path.c_str());
}

TEST(Profiler, StateDiscipline) {
  ASSERT_TRUE(profiler().reset());
  EXPECT_FALSE(profiler().running());
  ASSERT_TRUE(profiler().start());
  EXPECT_TRUE(profiler().running());
  EXPECT_FALSE(profiler().start()) << "double start must refuse";
  EXPECT_FALSE(profiler().reset()) << "reset while running must refuse";
  profiler().stop();
  EXPECT_FALSE(profiler().running());
  EXPECT_TRUE(profiler().reset());
  EXPECT_EQ(profiler().samples(), 0u);
  EXPECT_EQ(profiler().distinctStacks(), 0u);
}

#else  // !QCLAB_OBS_PROFILER_POSIX

TEST(Profiler, NoOpSurfaceInThisBuild) {
  EXPECT_FALSE(profiler().start());
  EXPECT_FALSE(profiler().running());
  profiler().stop();
  EXPECT_EQ(profiler().samples(), 0u);
  EXPECT_EQ(profiler().distinctStacks(), 0u);
  EXPECT_TRUE(profiler().folded().empty());
  EXPECT_TRUE(profiler().collapsed().empty());
  EXPECT_TRUE(profiler().reset());

  // writeCollapsed still produces (an empty) file so --obs-prof works.
  const std::string path = "qclab-profiler-noop.folded";
  EXPECT_TRUE(profiler().writeCollapsed(path));
  std::ifstream file(path);
  EXPECT_TRUE(file.good());
  file.close();
  std::remove(path.c_str());
}

#endif  // QCLAB_OBS_PROFILER_POSIX

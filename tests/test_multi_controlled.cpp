/// \file test_multi_controlled.cpp
/// \brief Unit tests for MCX / MCY / MCZ / Toffoli, including the paper's
/// control-state usage from the QEC example (§5.4).

#include <gtest/gtest.h>

#include <sstream>

#include "qclab/qgates/qgates.hpp"
#include "test_helpers.hpp"

namespace qclab::qgates {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

TEST(Toffoli, TruthTable) {
  const auto ccx = Toffoli<double>(0, 1, 2).matrix();
  EXPECT_EQ(ccx.rows(), 8u);
  // Only |110> <-> |111> are exchanged.
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(ccx(i, i), C(1));
  EXPECT_EQ(ccx(6, 7), C(1));
  EXPECT_EQ(ccx(7, 6), C(1));
  EXPECT_EQ(ccx(6, 6), C(0));
  EXPECT_TRUE(ccx.isUnitary(1e-14));
}

TEST(Mcx, MatchesToffoliForAllOnesStates) {
  qclab::test::expectMatrixNear(
      MCX<double>({0, 1}, 2, {1, 1}).matrix(),
      Toffoli<double>(0, 1, 2).matrix());
  qclab::test::expectMatrixNear(MCX<double>({0, 1}, 2).matrix(),
                                Toffoli<double>(0, 1, 2).matrix());
}

TEST(Mcx, ControlStatesSelectSubspace) {
  // Paper §5.4: MCX([3,4], 2, [0,1]) fires when ancilla 3 is |0> and
  // ancilla 4 is |1>.  Here on a 3-qubit version: controls {0,1} states
  // {0,1}, target 2 -> only |01x> flips.
  const auto m = MCX<double>({0, 1}, 2, {0, 1}).matrix();
  EXPECT_EQ(m(2, 3), C(1));  // |010> <-> |011>
  EXPECT_EQ(m(3, 2), C(1));
  EXPECT_EQ(m(0, 0), C(1));
  EXPECT_EQ(m(6, 6), C(1));
  EXPECT_EQ(m(7, 7), C(1));
}

TEST(Mcx, TargetBetweenControls) {
  // Controls {0, 2}, target 1: |1x1> flips the middle bit.
  const auto m = MCX<double>({0, 2}, 1, {1, 1}).matrix();
  // |101> (5) <-> |111> (7).
  EXPECT_EQ(m(5, 7), C(1));
  EXPECT_EQ(m(7, 5), C(1));
  EXPECT_EQ(m(4, 4), C(1));
  EXPECT_TRUE(m.isUnitary(1e-14));
}

TEST(Mcz, DiagonalWithSinglePhaseFlip) {
  const auto m = MCZ<double>({0, 1}, 2, {1, 1}).matrix();
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(m(i, i), C(1));
  EXPECT_EQ(m(7, 7), C(-1));
  EXPECT_TRUE(MCZ<double>({0, 1}, 2, {1, 1}).isDiagonal());
}

TEST(Mcy, EqualsSXSdgConjugation) {
  // MCY == (I (x) S) MCX (I (x) Sdg) on the target.
  const auto mcy = MCY<double>({0, 1}, 2, {1, 1}).matrix();
  const auto mcx = MCX<double>({0, 1}, 2, {1, 1}).matrix();
  const auto s = dense::kron(M::identity(4), SGate<double>(0).matrix());
  const auto sdg = dense::kron(M::identity(4), SdgGate<double>(0).matrix());
  qclab::test::expectMatrixNear(mcy, s * mcx * sdg);
}

TEST(McGate, AccessorsAndQubits) {
  const MCX<double> gate({4, 1}, 2, {1, 0});
  EXPECT_EQ(gate.controlQubits(), (std::vector<int>{4, 1}));
  EXPECT_EQ(gate.target(), 2);
  EXPECT_EQ(gate.states(), (std::vector<int>{1, 0}));
  EXPECT_EQ(gate.qubits(), (std::vector<int>{1, 2, 4}));  // sorted
  EXPECT_EQ(gate.nbQubits(), 3);
}

TEST(McGate, Validation) {
  EXPECT_THROW(MCX<double>({}, 0, {}), InvalidArgumentError);
  EXPECT_THROW(MCX<double>({0, 0}, 1, {1, 1}), InvalidArgumentError);
  EXPECT_THROW(MCX<double>({0, 1}, 1, {1, 1}), InvalidArgumentError);
  EXPECT_THROW(MCX<double>({0, 1}, 2, {1}), InvalidArgumentError);
  EXPECT_THROW(MCX<double>({0, 1}, 2, {1, 2}), InvalidArgumentError);
}

TEST(McGate, InverseIsSelf) {
  const MCX<double> gate({0, 1}, 2, {0, 1});
  const auto inverse = gate.inverse();
  qclab::test::expectMatrixNear(inverse->matrix() * gate.matrix(),
                                M::identity(8));
}

TEST(McGate, QasmCcxAndStateWrappers) {
  std::ostringstream plain;
  MCX<double>({0, 1}, 2, {1, 1}).toQASM(plain);
  EXPECT_EQ(plain.str(), "ccx q[0], q[1], q[2];\n");

  std::ostringstream wrapped;
  MCX<double>({0, 1}, 2, {0, 1}).toQASM(wrapped);
  EXPECT_EQ(wrapped.str(), "x q[0];\nccx q[0], q[1], q[2];\nx q[0];\n");

  std::ostringstream mcz;
  MCZ<double>({0, 1}, 2, {1, 1}).toQASM(mcz);
  EXPECT_EQ(mcz.str(), "h q[2];\nccx q[0], q[1], q[2];\nh q[2];\n");

  std::ostringstream c3x;
  MCX<double>({0, 1, 2}, 3).toQASM(c3x);
  EXPECT_EQ(c3x.str(), "c3x q[0], q[1], q[2], q[3];\n");

  MCX<double> tooBig({0, 1, 2, 3, 4}, 5);
  std::ostringstream sink;
  EXPECT_THROW(tooBig.toQASM(sink), InvalidArgumentError);
}

TEST(McGate, DrawItemsWithMixedControlStates) {
  std::vector<io::DrawItem> items;
  MCX<double>({3, 4}, 0, {1, 0}).appendDrawItems(items);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].boxTop, 0);
  EXPECT_EQ(items[0].controls1, std::vector<int>{3});
  EXPECT_EQ(items[0].controls0, std::vector<int>{4});
}

TEST(McGate, ShiftQubits) {
  MCX<double> gate({0, 2}, 1, {1, 1});
  gate.shiftQubits(2);
  EXPECT_EQ(gate.controlQubits(), (std::vector<int>{2, 4}));
  EXPECT_EQ(gate.target(), 3);
}

class McxControlCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(McxControlCountSweep, UnitaryInvolutionAndSelectivity) {
  const int nbControls = GetParam();
  std::vector<int> controls(static_cast<std::size_t>(nbControls));
  for (int i = 0; i < nbControls; ++i) controls[static_cast<std::size_t>(i)] = i;
  const MCX<double> gate(controls, nbControls);
  const auto m = gate.matrix();
  EXPECT_TRUE(m.isUnitary(1e-13));
  qclab::test::expectMatrixNear(m * m, M::identity(m.rows()));
  // Exactly one pair of basis states is exchanged.
  std::size_t offDiagonal = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (i != j && std::abs(m(i, j)) > 1e-14) ++offDiagonal;
    }
  }
  EXPECT_EQ(offDiagonal, 2u);
}

INSTANTIATE_TEST_SUITE_P(ControlCounts, McxControlCountSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace qclab::qgates

/// \file test_sampling.cpp
/// \brief Unit tests for the direct-sampling fast path
/// (sampleStateCounts), the stabilizer Pauli expectation, and multi-marked
/// Grover search.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using C = std::complex<double>;
using namespace qclab::qgates;

TEST(SampleStateCounts, GhzOnlyTwoOutcomes) {
  const auto state = algorithms::ghz<double>(5).simulate("00000").state(0);
  random::Rng rng(1);
  const auto counts = sampleStateCounts(state, 2000, rng);
  ASSERT_EQ(counts.size(), 32u);
  EXPECT_EQ(counts[0] + counts[31], 2000u);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 2000.0, 0.5, 0.05);
  for (std::size_t i = 1; i < 31; ++i) EXPECT_EQ(counts[i], 0u);
}

TEST(SampleStateCounts, SubsetMarginals) {
  // Bell pair + spectator |+>: sampling only qubit 1 of 3 is 50/50.
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Hadamard<double>(2));
  const auto state = circuit.simulate("000").state(0);
  random::Rng rng(2);
  const auto counts = sampleStateCounts(state, {1}, 4000, rng);
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0] + counts[1], 4000u);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 4000.0, 0.5, 0.04);
}

TEST(SampleStateCounts, MatchesBranchingCountsDistribution) {
  // The fast path and the Measurement-object route draw from the same
  // distribution: compare their underlying weights via large samples of
  // the same seeded generator ordering is fragile, so compare frequencies.
  auto circuit = qclab::test::randomCircuit<double>(3, 15, 6);
  const auto state = circuit.simulate("000").state(0);
  random::Rng rng(3);
  const auto fast = sampleStateCounts(state, 50000, rng);

  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Measurement<double>(1));
  circuit.push_back(Measurement<double>(2));
  const auto branching = circuit.simulate("000").counts(50000, 4);
  ASSERT_EQ(fast.size(), branching.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(fast[i]) / 50000.0,
                static_cast<double>(branching[i]) / 50000.0, 0.02)
        << "outcome " << i;
  }
}

TEST(SampleStateCounts, QubitOrderControlsBitOrder) {
  // |01>: sampling qubits {1, 0} reports '10'.
  const auto state = basisState<double>("01");
  random::Rng rng(4);
  const auto counts = sampleStateCounts(state, {1, 0}, 10, rng);
  EXPECT_EQ(counts[util::bitstringToIndex("10")], 10u);
}

TEST(SampleStateCounts, Validation) {
  const auto state = basisState<double>("00");
  random::Rng rng(5);
  EXPECT_THROW(sampleStateCounts(state, {}, 10, rng), InvalidArgumentError);
  EXPECT_THROW(sampleStateCounts(state, {5}, 10, rng), QubitRangeError);
  EXPECT_THROW(sampleStateCounts(std::vector<C>(3), 10, rng),
               InvalidArgumentError);
}

TEST(StabilizerExpectation, BellCorrelations) {
  stabilizer::Tableau tableau(2);
  tableau.h(0);
  tableau.cx(0, 1);
  EXPECT_EQ(tableau.expectation("XX"), 1);
  EXPECT_EQ(tableau.expectation("ZZ"), 1);
  EXPECT_EQ(tableau.expectation("YY"), -1);
  EXPECT_EQ(tableau.expectation("ZI"), 0);
  EXPECT_EQ(tableau.expectation("XI"), 0);
  EXPECT_EQ(tableau.expectation("II"), 1);
}

TEST(StabilizerExpectation, SingleQubitStates) {
  stabilizer::Tableau zero(1);
  EXPECT_EQ(zero.expectation("Z"), 1);
  EXPECT_EQ(zero.expectation("X"), 0);
  zero.x(0);  // |1>
  EXPECT_EQ(zero.expectation("Z"), -1);

  stabilizer::Tableau plus(1);
  plus.h(0);
  EXPECT_EQ(plus.expectation("X"), 1);
  EXPECT_EQ(plus.expectation("Z"), 0);
  plus.s(0);  // S|+> = Y eigenstate
  EXPECT_EQ(plus.expectation("Y"), 1);
  EXPECT_EQ(plus.expectation("X"), 0);
}

TEST(StabilizerExpectation, MatchesStateVectorOnRandomCliffords) {
  // Cross-validate against the observable module on random Clifford
  // circuits: stabilizer expectations are always exactly -1, 0, or +1 and
  // must match <psi|P|psi>.
  random::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 3;
    QCircuit<double> circuit(n);
    // Clifford-only random circuit.
    for (int g = 0; g < 20; ++g) {
      const int q = static_cast<int>(rng.uniformInt(n));
      switch (rng.uniformInt(4)) {
        case 0: circuit.push_back(Hadamard<double>(q)); break;
        case 1: circuit.push_back(SGate<double>(q)); break;
        case 2: circuit.push_back(PauliX<double>(q)); break;
        default: {
          int t = static_cast<int>(rng.uniformInt(n));
          while (t == q) t = static_cast<int>(rng.uniformInt(n));
          circuit.push_back(CX<double>(q, t));
          break;
        }
      }
    }
    stabilizer::Tableau tableau(n);
    random::Rng shotRng(8);
    stabilizer::simulateShot(circuit, tableau, shotRng);
    const auto state = circuit.simulate("000").state(0);
    const char alphabet[4] = {'I', 'X', 'Y', 'Z'};
    for (int probe = 0; probe < 10; ++probe) {
      std::string paulis;
      for (int q = 0; q < n; ++q) paulis += alphabet[rng.uniformInt(4)];
      const double reference = PauliString<double>(paulis).expectation(state);
      EXPECT_NEAR(static_cast<double>(tableau.expectation(paulis)), reference,
                  1e-10)
          << paulis;
    }
  }
}

TEST(StabilizerExpectation, Validation) {
  stabilizer::Tableau tableau(2);
  EXPECT_THROW(tableau.expectation("Z"), InvalidArgumentError);
  EXPECT_THROW(tableau.expectation("ZA"), InvalidArgumentError);
}

TEST(GroverMulti, FindsOneOfSeveralMarkedStates) {
  const std::set<std::string> marked = {"001", "110"};
  const auto circuit = algorithms::grover<double>(marked);
  const auto simulation = circuit.simulate("000");
  double success = 0.0;
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    if (marked.count(simulation.result(i))) {
      success += simulation.probability(i);
    }
  }
  EXPECT_GT(success, 0.9);
}

TEST(GroverMulti, MatchesAnalyticProbability) {
  const std::set<std::string> marked = {"0001", "0110", "1011"};
  for (int iterations = 1; iterations <= 2; ++iterations) {
    const auto circuit = algorithms::grover<double>(marked, iterations);
    const auto simulation = circuit.simulate("0000");
    double success = 0.0;
    for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
      if (marked.count(simulation.result(i))) {
        success += simulation.probability(i);
      }
    }
    EXPECT_NEAR(success,
                algorithms::groverSuccessProbabilityMulti(4, 3, iterations),
                1e-10);
  }
}

TEST(GroverMulti, SingleElementSetMatchesScalarOverload) {
  const auto viaSet = algorithms::grover<double>(std::set<std::string>{"101"}, 2);
  const auto viaString = algorithms::grover<double>("101", 2);
  const auto a = viaSet.simulate("000");
  const auto b = viaString.simulate("000");
  ASSERT_EQ(a.nbBranches(), b.nbBranches());
  for (std::size_t i = 0; i < a.nbBranches(); ++i) {
    EXPECT_EQ(a.result(i), b.result(i));
    EXPECT_NEAR(a.probability(i), b.probability(i), 1e-12);
  }
}

}  // namespace
}  // namespace qclab

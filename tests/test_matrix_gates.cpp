/// \file test_matrix_gates.cpp
/// \brief Unit tests for user-defined matrix gates (the paper's custom-gate
/// extension point).

#include <gtest/gtest.h>

#include <sstream>

#include "qclab/io/qasm.hpp"
#include "qclab/qgates/qgates.hpp"
#include "test_helpers.hpp"

namespace qclab::qgates {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

TEST(MatrixGate1, StoresMatrix) {
  const auto u = Hadamard<double>(0).matrix();
  const MatrixGate1<double> gate(1, u, "myH");
  qclab::test::expectMatrixNear(gate.matrix(), u);
  EXPECT_EQ(gate.qubit(), 1);
  EXPECT_EQ(gate.drawLabel(), "myH");
}

TEST(MatrixGate1, RejectsNonUnitary) {
  EXPECT_THROW(MatrixGate1<double>(0, M{{1, 1}, {0, 1}}),
               InvalidArgumentError);
  EXPECT_THROW(MatrixGate1<double>(0, M(3, 3)), InvalidArgumentError);
}

TEST(MatrixGate1, InverseIsDagger) {
  random::Rng rng(1);
  const auto u = qclab::test::randomUnitary1<double>(rng);
  const MatrixGate1<double> gate(0, u);
  const auto inverse = gate.inverse();
  qclab::test::expectMatrixNear(inverse->matrix() * u, M::identity(2));
}

TEST(MatrixGate1, QasmExportsAsU3UpToPhase) {
  random::Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const auto u = qclab::test::randomUnitary1<double>(rng);
    QCircuit<double> circuit(1);
    circuit.push_back(MatrixGate1<double>(0, u));
    const auto reparsed = io::parseQasm<double>(circuit.toQASM());
    // Global phase is lost in QASM; compare action on a state up to phase.
    const auto stateIn = qclab::test::randomState<double>(1, rng);
    const auto a = circuit.simulate(stateIn).state(0);
    const auto b = reparsed.simulate(stateIn).state(0);
    EXPECT_TRUE(dense::equalUpToPhase(a, b, 1e-10));
  }
}

TEST(MatrixGateN, SingleQubitBehavesLikeMatrixGate1) {
  const auto u = SGate<double>(0).matrix();
  const MatrixGateN<double> gate({2}, u, "S");
  qclab::test::expectMatrixNear(gate.matrix(), u);
  EXPECT_EQ(gate.qubits(), std::vector<int>{2});
  EXPECT_EQ(gate.nbQubits(), 1);
}

TEST(MatrixGateN, TwoQubitGate) {
  const auto u = CX<double>(0, 1).matrix();
  const MatrixGateN<double> gate({0, 1}, u, "CXcopy");
  qclab::test::expectMatrixNear(gate.matrix(), u);
  const auto inverse = gate.inverse();
  qclab::test::expectMatrixNear(inverse->matrix() * u, M::identity(4));
}

TEST(MatrixGateN, NonContiguousQubitsSimulateCorrectly) {
  // A CZ-like diagonal on qubits {0, 2} of a 3-qubit register.
  M u = M::identity(4);
  u(3, 3) = C(-1);
  QCircuit<double> viaMatrixGate(3);
  viaMatrixGate.push_back(MatrixGateN<double>({0, 2}, u, "CZ02"));
  QCircuit<double> viaCz(3);
  viaCz.push_back(CZ<double>(0, 2));
  qclab::test::expectMatrixNear(viaMatrixGate.matrix(), viaCz.matrix());
}

TEST(MatrixGateN, Validation) {
  const auto id4 = M::identity(4);
  EXPECT_THROW(MatrixGateN<double>({}, id4), InvalidArgumentError);
  EXPECT_THROW(MatrixGateN<double>({1, 0}, id4), InvalidArgumentError);
  EXPECT_THROW(MatrixGateN<double>({0, 0}, id4), InvalidArgumentError);
  EXPECT_THROW(MatrixGateN<double>({0, 1}, M::identity(8)),
               InvalidArgumentError);
  EXPECT_THROW(MatrixGateN<double>({0, 1}, M{{1, 1}, {0, 1}}),
               InvalidArgumentError);
}

TEST(MatrixGateN, MultiQubitQasmThrows) {
  const MatrixGateN<double> gate({0, 1}, M::identity(4));
  std::ostringstream sink;
  EXPECT_THROW(gate.toQASM(sink), InvalidArgumentError);
}

TEST(MatrixGateN, ShiftQubits) {
  MatrixGateN<double> gate({0, 2}, M::identity(4));
  gate.shiftQubits(1);
  EXPECT_EQ(gate.qubits(), (std::vector<int>{1, 3}));
}

TEST(MatrixGateN, DrawSpansQubitRange) {
  std::vector<io::DrawItem> items;
  MatrixGateN<double>({1, 3}, M::identity(4), "G").appendDrawItems(items);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].boxTop, 1);
  EXPECT_EQ(items[0].boxBottom, 3);
}

TEST(ControlledMatrixHelper, MatchesKnownGates) {
  // controlledMatrix is the machinery behind every controlled gate; verify
  // it standalone against CX and a custom two-target example.
  const auto cx = controlledMatrix<double>({0, 1}, {0}, {1}, {1},
                                           dense::pauliX<double>());
  qclab::test::expectMatrixNear(cx, CX<double>(0, 1).matrix());

  // Controlled-SWAP (Fredkin) on 3 qubits: control 0, targets {1, 2}.
  const auto fredkin = controlledMatrix<double>(
      {0, 1, 2}, {0}, {1}, {1, 2}, SWAP<double>(0, 1).matrix());
  EXPECT_TRUE(fredkin.isUnitary(1e-14));
  // |101> <-> |110>.
  EXPECT_EQ(fredkin(5, 6), C(1));
  EXPECT_EQ(fredkin(6, 5), C(1));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(fredkin(i, i), C(1));
  EXPECT_EQ(fredkin(7, 7), C(1));
}

TEST(ControlledMatrixHelper, Validation) {
  EXPECT_THROW(controlledMatrix<double>({0, 1}, {0}, {1, 1}, {1},
                                        dense::pauliX<double>()),
               InvalidArgumentError);
  EXPECT_THROW(controlledMatrix<double>({0, 1, 2}, {0}, {1}, {1},
                                        dense::pauliX<double>()),
               InvalidArgumentError);
  EXPECT_THROW(controlledMatrix<double>({0, 1}, {0}, {1}, {1},
                                        dense::Matrix<double>::identity(4)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace qclab::qgates

/// \file test_qaoa.cpp
/// \brief Unit tests for the QAOA MaxCut builders.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab::algorithms {
namespace {

Graph triangle() { return {3, {{0, 1}, {1, 2}, {0, 2}}}; }
Graph square() { return {4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}}; }
Graph path(int n) {
  Graph graph{n, {}};
  for (int i = 0; i + 1 < n; ++i) graph.edges.push_back({i, i + 1});
  return graph;
}

TEST(MaxCutHamiltonian, BasisStatesGiveCutValues) {
  const auto cost = maxCutHamiltonian<double>(triangle());
  // |000>: cut 0; |001>: edges (1,2),(0,2) cut -> 2; |010>: 2; |011>: 2.
  EXPECT_NEAR(cost.expectation(basisState<double>("000")), 0.0, 1e-12);
  EXPECT_NEAR(cost.expectation(basisState<double>("001")), 2.0, 1e-12);
  EXPECT_NEAR(cost.expectation(basisState<double>("010")), 2.0, 1e-12);
  EXPECT_NEAR(cost.expectation(basisState<double>("011")), 2.0, 1e-12);
  EXPECT_NEAR(cost.expectation(basisState<double>("111")), 0.0, 1e-12);
}

TEST(MaxCutHamiltonian, Validation) {
  EXPECT_THROW(maxCutHamiltonian<double>(Graph{1, {}}),
               InvalidArgumentError);
  EXPECT_THROW(maxCutHamiltonian<double>(Graph{2, {{0, 0}}}),
               InvalidArgumentError);
  EXPECT_THROW(maxCutHamiltonian<double>(Graph{2, {{0, 5}}}),
               QubitRangeError);
}

TEST(MaxCutBruteForce, KnownGraphs) {
  EXPECT_EQ(maxCutBruteForce(triangle()), 2);
  EXPECT_EQ(maxCutBruteForce(square()), 4);
  EXPECT_EQ(maxCutBruteForce(path(4)), 3);
}

TEST(Qaoa, ZeroParametersGiveUniformAverage) {
  // gamma = beta = 0: the state stays uniform; expected cut = |E| / 2.
  const auto graph = square();
  EXPECT_NEAR(qaoaExpectedCut<double>(graph, {0.0}, {0.0}), 2.0, 1e-10);
}

TEST(Qaoa, CircuitStructure) {
  const auto circuit = qaoaCircuit<double>(square(), {0.3, 0.4}, {0.1, 0.2});
  const auto counts = circuit.gateCounts();
  EXPECT_EQ(counts.at("H"), 4u);
  // Each of 2 layers: 4 RZZ + 4 RX.
  std::size_t rzz = 0, rx = 0;
  for (const auto& [key, count] : counts) {
    if (key.rfind("RZZ", 0) == 0) rzz += count;
    if (key.rfind("RX", 0) == 0) rx += count;
  }
  EXPECT_EQ(rzz, 8u);
  EXPECT_EQ(rx, 8u);
}

TEST(Qaoa, Validation) {
  EXPECT_THROW(qaoaCircuit<double>(square(), {}, {}), InvalidArgumentError);
  EXPECT_THROW(qaoaCircuit<double>(square(), {0.1}, {0.1, 0.2}),
               InvalidArgumentError);
}

TEST(Qaoa, OneLayerBeatsRandomGuessOnTriangle) {
  const auto graph = triangle();
  const auto [gamma, beta, value] = qaoaGridSearch<double>(graph, 12);
  // Random guessing achieves |E|/2 = 1.5; p=1 QAOA on the triangle reaches
  // ~2 (the known optimum for odd cycles at p=1 is 2).
  EXPECT_GT(value, 1.8);
  EXPECT_LE(value, 2.0 + 1e-9);
  // The optimizer found genuinely nontrivial angles.
  EXPECT_GT(std::abs(gamma) + std::abs(beta), 1e-9);
}

TEST(Qaoa, ApproximationImprovesWithDepth) {
  const auto graph = square();
  // Known good p=1 parameters for bipartite-ish graphs via grid search.
  const auto [gamma, beta, valueP1] = qaoaGridSearch<double>(graph, 12);
  (void)gamma;
  (void)beta;
  // p=2 with a crude nested reuse of the p=1 angles must not be worse than
  // uniform guessing and the best p=1 cut should be <= optimum.
  EXPECT_GE(valueP1, 2.0);
  EXPECT_LE(valueP1, 4.0 + 1e-9);
}

TEST(Qaoa, ExpectationMatchesSampledCutDistribution) {
  // The expectation equals the probability-weighted cut value over
  // measured bitstrings.
  const auto graph = triangle();
  const std::vector<double> gammas = {0.7}, betas = {0.4};
  auto circuit = qaoaCircuit<double>(graph, gammas, betas);
  const auto state = circuit.simulate("000").state(0);
  const auto cost = maxCutHamiltonian<double>(graph);

  double weighted = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    const auto bits = util::indexToBitstring(i, graph.nbVertices);
    int cut = 0;
    for (const auto& [a, b] : graph.edges) {
      cut += bits[static_cast<std::size_t>(a)] !=
             bits[static_cast<std::size_t>(b)];
    }
    weighted += std::norm(state[i]) * cut;
  }
  EXPECT_NEAR(cost.expectation(state), weighted, 1e-10);
}

class QaoaPathSweep : public ::testing::TestWithParam<int> {};

TEST_P(QaoaPathSweep, GridSearchBeatsUniformGuessing) {
  const auto graph = path(GetParam());
  const double uniform = static_cast<double>(graph.edges.size()) / 2.0;
  const auto [gamma, beta, value] = qaoaGridSearch<double>(graph, 10);
  (void)gamma;
  (void)beta;
  EXPECT_GT(value, uniform + 0.2);
  EXPECT_LE(value, maxCutBruteForce(graph) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Paths, QaoaPathSweep, ::testing::Values(3, 4, 5, 6));

}  // namespace
}  // namespace qclab::algorithms

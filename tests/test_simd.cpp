/// \file test_simd.cpp
/// \brief SIMD tier tests: level detection/override plumbing plus
/// differential fuzzing of the vectorized kernels against the scalar
/// tier, for float and double, over every target position (unit-stride
/// runs shorter and longer than a vector register, and states on both
/// sides of the OpenMP threshold).

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "qclab/qclab.hpp"
#include "test_helpers.hpp"

using qclab::sim::KernelPath;
using qclab::sim::SimdLevel;

namespace {

/// Forces a dispatch level for one scope and restores the previous one.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(qclab::sim::setSimdLevel(level)) {}
  ~ScopedSimdLevel() { qclab::sim::setSimdLevel(previous_); }

 private:
  SimdLevel previous_;
};

bool avx2Available() {
  return qclab::sim::detectedSimdLevel() == SimdLevel::kAvx2;
}

}  // namespace

// ---- level plumbing ---------------------------------------------------

TEST(SimdLevel, NamesAreStable) {
  EXPECT_STREQ(qclab::sim::simdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(qclab::sim::simdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdLevel, DetectionMatchesBuild) {
  // Without the compiled tier the only detectable level is scalar.
  if (!qclab::builtWithSimd()) {
    EXPECT_EQ(qclab::sim::detectedSimdLevel(), SimdLevel::kScalar);
  }
  // The active level never exceeds what the build + CPU support.
  EXPECT_LE(static_cast<int>(qclab::sim::activeSimdLevel()),
            static_cast<int>(qclab::sim::detectedSimdLevel()));
}

TEST(SimdLevel, SetClampsAndRestores) {
  const SimdLevel before = qclab::sim::activeSimdLevel();
  {
    const ScopedSimdLevel scalar(SimdLevel::kScalar);
    EXPECT_EQ(qclab::sim::activeSimdLevel(), SimdLevel::kScalar);
    EXPECT_FALSE(qclab::sim::simdActive());
  }
  EXPECT_EQ(qclab::sim::activeSimdLevel(), before);
  {
    // Requesting AVX2 is clamped to the detected level.
    const ScopedSimdLevel avx2(SimdLevel::kAvx2);
    EXPECT_EQ(qclab::sim::activeSimdLevel(),
              qclab::sim::detectedSimdLevel());
  }
  EXPECT_EQ(qclab::sim::activeSimdLevel(), before);
}

TEST(SimdLevel, CountedPathMapsOnlyVectorizedPaths) {
  {
    const ScopedSimdLevel scalar(SimdLevel::kScalar);
    EXPECT_EQ(qclab::sim::simdCountedPath(KernelPath::kDense1, 1),
              KernelPath::kDense1);
    EXPECT_EQ(qclab::sim::simdCountedPath(KernelPath::kDenseK, 2),
              KernelPath::kDenseK);
  }
  if (!avx2Available()) return;
  const ScopedSimdLevel avx2(SimdLevel::kAvx2);
  EXPECT_EQ(qclab::sim::simdCountedPath(KernelPath::kDense1, 1),
            KernelPath::kSimdDense1);
  EXPECT_EQ(qclab::sim::simdCountedPath(KernelPath::kDiagonal1, 1),
            KernelPath::kSimdDiagonal1);
  EXPECT_EQ(qclab::sim::simdCountedPath(KernelPath::kDenseK, 2),
            KernelPath::kSimdDenseK);
  // Paths without a vectorized variant are never remapped.
  EXPECT_EQ(qclab::sim::simdCountedPath(KernelPath::kDenseK, 3),
            KernelPath::kDenseK);
  EXPECT_EQ(qclab::sim::simdCountedPath(KernelPath::kControlled1, 1),
            KernelPath::kControlled1);
  EXPECT_EQ(qclab::sim::simdCountedPath(KernelPath::kSwap, 2),
            KernelPath::kSwap);
}

// ---- differential fuzz: scalar vs AVX2 kernels ------------------------

template <typename T>
class SimdDifferential : public ::testing::Test {};
using Scalars = ::testing::Types<float, double>;
TYPED_TEST_SUITE(SimdDifferential, Scalars);

TYPED_TEST(SimdDifferential, Apply1AgreesAcrossLevelsAllPositions) {
  using T = TypeParam;
  if (!avx2Available()) GTEST_SKIP() << "no AVX2 on this machine";
  qclab::random::Rng rng(11);
  // n = 13 crosses the OpenMP threshold (dim 8192 > 4096).
  for (int n : {1, 2, 3, 5, 13}) {
    const auto reference = qclab::test::randomState<T>(n, rng);
    for (int qubit = 0; qubit < n; ++qubit) {
      const auto u = qclab::test::randomUnitary1<T>(rng);
      auto scalar = reference;
      auto vector = reference;
      {
        const ScopedSimdLevel level(SimdLevel::kScalar);
        qclab::sim::apply1(scalar, n, qubit, u);
      }
      {
        const ScopedSimdLevel level(SimdLevel::kAvx2);
        qclab::sim::apply1(vector, n, qubit, u);
      }
      qclab::test::expectStateNear(scalar, vector);
    }
  }
}

TYPED_TEST(SimdDifferential, ApplyDiagonal1AgreesAcrossLevels) {
  using T = TypeParam;
  if (!avx2Available()) GTEST_SKIP() << "no AVX2 on this machine";
  qclab::random::Rng rng(12);
  for (int n : {1, 3, 6, 13}) {
    const auto reference = qclab::test::randomState<T>(n, rng);
    for (int qubit = 0; qubit < n; ++qubit) {
      const auto d0 = std::polar(T(1), static_cast<T>(rng.uniform(-3, 3)));
      const auto d1 = std::polar(T(1), static_cast<T>(rng.uniform(-3, 3)));
      auto scalar = reference;
      auto vector = reference;
      {
        const ScopedSimdLevel level(SimdLevel::kScalar);
        qclab::sim::applyDiagonal1(scalar, n, qubit, d0, d1);
      }
      {
        const ScopedSimdLevel level(SimdLevel::kAvx2);
        qclab::sim::applyDiagonal1(vector, n, qubit, d0, d1);
      }
      qclab::test::expectStateNear(scalar, vector);
    }
  }
}

TYPED_TEST(SimdDifferential, Apply2AgreesWithApplyKAndAcrossLevels) {
  using T = TypeParam;
  qclab::random::Rng rng(13);
  for (int n : {2, 3, 5, 13}) {
    const auto reference = qclab::test::randomState<T>(n, rng);
    for (int q0 = 0; q0 < n; ++q0) {
      for (int q1 = q0 + 1; q1 < n; ++q1) {
        // Random 4x4 unitary: product of two embedded 1-qubit unitaries
        // and an entangling iSWAP.
        auto u = qclab::qgates::iSWAP<T>(0, 1).matrix();
        u = qclab::dense::kron(qclab::test::randomUnitary1<T>(rng),
                               qclab::test::randomUnitary1<T>(rng)) *
            u;
        auto viaK = reference;
        auto via2Scalar = reference;
        qclab::sim::applyK(viaK, n, {q0, q1}, u);
        {
          const ScopedSimdLevel level(SimdLevel::kScalar);
          qclab::sim::apply2(via2Scalar, n, q0, q1, u);
        }
        qclab::test::expectStateNear(viaK, via2Scalar);
        if (avx2Available()) {
          auto via2Vector = reference;
          const ScopedSimdLevel level(SimdLevel::kAvx2);
          qclab::sim::apply2(via2Vector, n, q0, q1, u);
          qclab::test::expectStateNear(viaK, via2Vector);
        }
      }
    }
  }
}

TYPED_TEST(SimdDifferential, RandomCircuitsAgreeAcrossLevels) {
  using T = TypeParam;
  if (!avx2Available()) GTEST_SKIP() << "no AVX2 on this machine";
  const qclab::sim::KernelBackend<T> backend;
  for (int n = 2; n <= 16; n += 2) {
    const auto circuit =
        qclab::test::randomCircuit<T>(n, 30, 1000u + static_cast<unsigned>(n));
    std::vector<std::complex<T>> scalar, vector;
    {
      const ScopedSimdLevel level(SimdLevel::kScalar);
      scalar = circuit.simulate(std::string(n, '0'), backend).state(0);
    }
    {
      const ScopedSimdLevel level(SimdLevel::kAvx2);
      vector = circuit.simulate(std::string(n, '0'), backend).state(0);
    }
    // A 30-gate circuit compounds per-gate rounding differences between
    // the FMA and scalar tiers; allow a modest depth factor.
    qclab::test::expectStateNear(scalar, vector,
                                 T(8) * qclab::test::tol<T>());
  }
}

// ---- fixed-capacity controlled-kernel buffer --------------------------

TEST(ControlledKernels, ManyControlsUseTheInlineBuffer) {
  using T = double;
  // 10 controls + target exercises deep insertion-sorted FixedBits.
  const int n = 12;
  qclab::random::Rng rng(21);
  auto state = qclab::test::randomState<T>(n, rng);
  auto viaKernel = state;

  std::vector<int> controls;
  std::vector<int> states;
  for (int q = 0; q < n - 1; ++q) {
    controls.push_back(q);
    states.push_back(1);
  }
  const int target = n - 1;
  const auto u = qclab::qgates::PauliX<T>(0).matrix();
  qclab::sim::applyControlled1(viaKernel, n, controls, states, target, u);

  // Reference: the controlled-X only exchanges the last two amplitudes.
  std::swap(state[state.size() - 2], state[state.size() - 1]);
  qclab::test::expectStateNear(state, viaKernel);
}

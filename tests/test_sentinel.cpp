/// \file test_sentinel.cpp
/// \brief Numerical-health sentinel tests: differential injection of NaN
/// and norm-drift through a deliberately broken gate on the plain,
/// blocked, and batched execution paths; the off/log/throw policies
/// (throw deferred to safe points); bit-identity of monitored vs.
/// unmonitored states; the QCLAB_OBS_SENTINEL env knob; and the no-op
/// surface under QCLAB_OBS_DISABLED.

#include <gtest/gtest.h>

#include <complex>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "qclab/qclab.hpp"

using qclab::obs::NumericalHealthError;
using qclab::obs::sentinel;
using qclab::obs::SentinelConfig;
using qclab::obs::SentinelPolicy;
using qclab::sim::KernelPath;

namespace {

using T = double;

/// A deliberately ill-behaved single-qubit "gate": multiplies both
/// amplitudes by `scale` (non-unitary for |scale| != 1; NaN scale injects
/// non-finite amplitudes).  MatrixGate validates unitarity, so the
/// injection rides a private QGate1 subclass instead.
class BrokenGate : public qclab::qgates::QGate1<T> {
 public:
  BrokenGate(int qubit, std::complex<T> scale)
      : qclab::qgates::QGate1<T>(qubit), scale_(scale) {}

  qclab::dense::Matrix<T> matrix() const override {
    qclab::dense::Matrix<T> m(2, 2);
    m(0, 0) = scale_;
    m(1, 1) = scale_;
    return m;
  }
  std::unique_ptr<qclab::qgates::QGate<T>> inverse() const override {
    return std::make_unique<BrokenGate>(this->qubit(), scale_);
  }
  std::unique_ptr<qclab::qgates::QGate<T>> cloneGate() const override {
    return std::make_unique<BrokenGate>(this->qubit(), scale_);
  }
  std::string qasmName() const override { return "broken"; }
  std::string drawLabel() const override { return "BRK"; }

 private:
  std::complex<T> scale_;
};

constexpr T kNaN = std::numeric_limits<T>::quiet_NaN();

/// Check at every opportunity with a tight norm tolerance.
SentinelConfig eagerConfig(SentinelPolicy policy) {
  SentinelConfig config;
  config.policy = policy;
  config.interval = 1;
  config.normTolerance = 1e-6;
  return config;
}

qclab::QCircuit<T> driftCircuit(std::complex<T> scale) {
  qclab::QCircuit<T> circuit(3);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  circuit.push_back(std::make_unique<BrokenGate>(2, scale));
  return circuit;
}

template <typename StateA, typename StateB>
bool bitIdentical(const StateA& a, const StateB& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(a[0])) == 0;
}

/// RAII restore of the process-wide sentinel config around each test.
class SentinelConfigGuard {
 public:
  SentinelConfigGuard() : saved_(sentinel().config()) {}
  ~SentinelConfigGuard() {
    sentinel().configure(saved_);
    sentinel().reset();
  }

 private:
  SentinelConfig saved_;
};

}  // namespace

TEST(Sentinel, PolicyNamesAreStable) {
  EXPECT_STREQ(qclab::obs::sentinelPolicyName(SentinelPolicy::kOff), "off");
  EXPECT_STREQ(qclab::obs::sentinelPolicyName(SentinelPolicy::kLog), "log");
  EXPECT_STREQ(qclab::obs::sentinelPolicyName(SentinelPolicy::kThrow),
               "throw");
}

#ifndef QCLAB_OBS_DISABLED

TEST(Sentinel, DetectsInjectedNaNOnTheSimulatePath) {
  SentinelConfigGuard guard;
  qclab::obs::resetAll();
  sentinel().configure(eagerConfig(SentinelPolicy::kLog));

  driftCircuit({kNaN, 0}).simulate("000");

  EXPECT_GE(sentinel().checks(), 1u);
  EXPECT_GE(sentinel().nanDetected(), 1u);
  EXPECT_EQ(sentinel().normAlerts(), 0u);  // NaN outranks drift
}

TEST(Sentinel, DetectsInjectedNormDriftOnTheSimulatePath) {
  SentinelConfigGuard guard;
  qclab::obs::resetAll();
  sentinel().configure(eagerConfig(SentinelPolicy::kLog));

  driftCircuit({1.2, 0}).simulate("000");  // normSq = 1.44

  EXPECT_GE(sentinel().normAlerts(), 1u);
  EXPECT_EQ(sentinel().nanDetected(), 0u);
  EXPECT_NEAR(sentinel().lastNormSq(), 1.44, 1e-9);
}

TEST(Sentinel, HealthyCircuitRaisesNoAlerts) {
  SentinelConfigGuard guard;
  qclab::obs::resetAll();
  sentinel().configure(eagerConfig(SentinelPolicy::kThrow));

  qclab::QCircuit<T> circuit(3);
  circuit.push_back(qclab::qgates::Hadamard<T>(0));
  circuit.push_back(qclab::qgates::CX<T>(0, 1));
  circuit.push_back(qclab::qgates::CX<T>(1, 2));
  EXPECT_NO_THROW(circuit.simulate("000"));

  EXPECT_GE(sentinel().checks(), 1u);
  EXPECT_EQ(sentinel().violations(), 0u);
}

TEST(Sentinel, ThrowPolicyRaisesAtTheSafePoint) {
  SentinelConfigGuard guard;
  qclab::obs::resetAll();
  sentinel().configure(eagerConfig(SentinelPolicy::kThrow));

  try {
    driftCircuit({kNaN, 0}).simulate("000");
    FAIL() << "expected NumericalHealthError";
  } catch (const NumericalHealthError& error) {
    EXPECT_NE(std::string(error.what()).find("non-finite"),
              std::string::npos)
        << error.what();
  }
  // The throw consumed the pending violation.
  EXPECT_FALSE(sentinel().violationPending());
}

TEST(Sentinel, DetectsInjectionOnTheBlockedPath) {
  SentinelConfigGuard guard;
  qclab::obs::resetAll();
  sentinel().configure(eagerConfig(SentinelPolicy::kLog));

  // The test_blocking recipe plus a drifting gate inside the window:
  // high qubits + small chunks guarantee a cache-blocked run.
  qclab::QCircuit<T> circuit(8);
  circuit.push_back(qclab::qgates::Hadamard<T>(5));
  circuit.push_back(qclab::qgates::CX<T>(5, 6));
  circuit.push_back(
      std::make_unique<BrokenGate>(7, std::complex<T>{1.3, 0}));
  circuit.push_back(qclab::qgates::CX<T>(6, 7));

  qclab::SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.maxQubits = 2;
  options.fusionOptions.blockQubits = 3;
  circuit.simulate("00000000", options);

  ASSERT_GE(qclab::obs::metrics().gateApplications(KernelPath::kBlocked), 1u)
      << "workload did not reach the blocked executor";
  EXPECT_GE(sentinel().normAlerts(), 1u);
}

TEST(Sentinel, ThrowPolicySurfacesFromTheBatchEngine) {
  SentinelConfigGuard guard;
  qclab::obs::resetAll();
  sentinel().configure(eagerConfig(SentinelPolicy::kThrow));

  qclab::QCircuit<T> circuit(3);
  circuit.push_back(qclab::qgates::RotationY<T>(0, 0.0));
  circuit.push_back(
      std::make_unique<BrokenGate>(1, std::complex<T>{kNaN, 0}));
  circuit.push_back(qclab::qgates::CX<T>(1, 2));

  // The violation latches inside the (possibly parallel) member loop and
  // must surface on the calling thread after the region.
  EXPECT_THROW(circuit.simulateBatch({{0.3}, {0.7}}), NumericalHealthError);
  EXPECT_FALSE(sentinel().violationPending());
}

TEST(Sentinel, OffPolicyChecksNothingAndStatesStayBitIdentical) {
  SentinelConfigGuard guard;

  // Same drifting circuit under off and under eager log monitoring: the
  // sentinels only ever read the state, so the results must agree bit
  // for bit, and kOff must not even count a check.
  qclab::obs::resetAll();
  sentinel().configure(eagerConfig(SentinelPolicy::kOff));
  const auto unmonitored = driftCircuit({1.2, 0}).simulate("000");
  EXPECT_EQ(sentinel().checks(), 0u);
  EXPECT_FALSE(sentinel().shouldCheck());

  sentinel().configure(eagerConfig(SentinelPolicy::kLog));
  const auto monitored = driftCircuit({1.2, 0}).simulate("000");
  EXPECT_GE(sentinel().checks(), 1u);

  EXPECT_TRUE(bitIdentical(unmonitored.branches().front().state,
                           monitored.branches().front().state));
}

TEST(Sentinel, IntervalThrottlesCheckCadence) {
  SentinelConfigGuard guard;
  qclab::obs::resetAll();
  SentinelConfig config = eagerConfig(SentinelPolicy::kLog);
  config.interval = 1000000;  // first opportunity fires, then silence
  sentinel().configure(config);

  const auto circuit = driftCircuit({1.0, 0});
  for (int run = 0; run < 5; ++run) circuit.simulate("000");
  EXPECT_LE(sentinel().checks(), 2u);
}

TEST(Sentinel, EnvKnobSelectsThePolicy) {
  ASSERT_EQ(setenv("QCLAB_OBS_SENTINEL", "throw", 1), 0);
  EXPECT_EQ(qclab::obs::Sentinel().policy(), SentinelPolicy::kThrow);
  ASSERT_EQ(setenv("QCLAB_OBS_SENTINEL", "off", 1), 0);
  EXPECT_EQ(qclab::obs::Sentinel().policy(), SentinelPolicy::kOff);
  ASSERT_EQ(setenv("QCLAB_OBS_SENTINEL", "0", 1), 0);
  EXPECT_EQ(qclab::obs::Sentinel().policy(), SentinelPolicy::kOff);
  ASSERT_EQ(setenv("QCLAB_OBS_SENTINEL", "log", 1), 0);
  EXPECT_EQ(qclab::obs::Sentinel().policy(), SentinelPolicy::kLog);
  ASSERT_EQ(setenv("QCLAB_OBS_SENTINEL", "garbage", 1), 0);
  EXPECT_EQ(qclab::obs::Sentinel().policy(), SentinelPolicy::kLog)
      << "unknown values keep the default";
  unsetenv("QCLAB_OBS_SENTINEL");
}

TEST(Sentinel, CheckStateHelperClassifiesDirectly) {
  std::vector<std::complex<T>> healthy = {{1.0, 0.0}, {0.0, 0.0}};
  double normSq = 0.0, maxAmpSq = 0.0;
  bool nanSeen = false;
  qclab::obs::sentinelAccumulateChunk(healthy.data(), healthy.size(), normSq,
                                      maxAmpSq, nanSeen);
  EXPECT_NEAR(normSq, 1.0, 1e-12);
  EXPECT_NEAR(maxAmpSq, 1.0, 1e-12);
  EXPECT_FALSE(nanSeen);

  std::vector<std::complex<T>> poisoned = {{kNaN, 0.0}, {0.0, 0.0}};
  normSq = maxAmpSq = 0.0;
  nanSeen = false;
  qclab::obs::sentinelAccumulateChunk(poisoned.data(), poisoned.size(),
                                      normSq, maxAmpSq, nanSeen);
  EXPECT_TRUE(nanSeen);
}

#else  // QCLAB_OBS_DISABLED

TEST(Sentinel, DisabledBuildIsInert) {
  SentinelConfig config;
  config.policy = SentinelPolicy::kThrow;
  config.interval = 1;
  sentinel().configure(config);  // no-op
  EXPECT_FALSE(sentinel().shouldCheck());
  EXPECT_NO_THROW(sentinel().throwIfPending());
  EXPECT_EQ(sentinel().checks(), 0u);
  EXPECT_EQ(sentinel().violations(), 0u);

  // Even a pathological circuit simulates silently.
  EXPECT_NO_THROW(driftCircuit({1.5, 0}).simulate("000"));
  EXPECT_EQ(sentinel().checks(), 0u);
}

#endif  // QCLAB_OBS_DISABLED

/// \file test_batch.cpp
/// \brief Tests of the batched multi-circuit execution engine:
/// differential fuzz against standalone simulate (bit-identical members
/// across scalar types, fusion/blocking modes, and thread counts),
/// shared-plan re-entrancy from many threads (TSan-covered), the
/// parameter-free prefix cache, rebinding between runs, and input
/// validation.

#include <gtest/gtest.h>

#include <atomic>
#include <complex>
#include <cstring>
#include <vector>

#include "test_helpers.hpp"

namespace qclab {
namespace {

using namespace qclab::qgates;

template <typename StateA, typename StateB>
bool bitIdentical(const StateA& a, const StateB& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(a[0])) == 0;
}

/// Standalone reference run: bind `values` on a private clone and
/// simulate with the options the batch engine uses internally.
template <typename T>
std::vector<std::complex<T>> standalone(const QCircuit<T>& prototype,
                                        const std::vector<T>& values,
                                        const sim::BatchOptions& options) {
  QCircuit<T> instance(prototype);
  ParameterBinding<T> binding(instance);
  binding.bind(values);
  SimulateOptions simulate;
  simulate.fusion = options.fusion;
  simulate.fusionOptions = options.fusionOptions;
  std::string bits = options.initialBits;
  if (bits.empty()) {
    bits.assign(static_cast<std::size_t>(prototype.nbQubits()), '0');
  }
  auto simulation = instance.simulate(bits, simulate);
  return simulation.branches().front().state.toVector();
}

/// Runs `members` random parameter vectors through one engine and checks
/// every member against its standalone run, bit for bit.
template <typename T>
void fuzzOnce(random::Rng& rng, const sim::BatchOptions& options) {
  const int n = 3 + static_cast<int>(rng.uniformInt(4));  // 3..6 qubits
  QCircuit<T> circuit(n);
  test::addRandomGates(circuit, 20 + static_cast<int>(rng.uniformInt(20)),
                       rng);

  sim::BatchedSimulation<T> engine(circuit, options);
  const std::size_t members = 4 + rng.uniformInt(5);
  std::vector<std::vector<T>> parameterSets(members);
  for (auto& values : parameterSets) {
    values.resize(engine.nbParameters());
    for (auto& value : values) {
      value = static_cast<T>(rng.uniform(-3.0, 3.0));
    }
  }

  auto results = engine.run(parameterSets);
  ASSERT_EQ(results.size(), members);
  for (std::size_t m = 0; m < members; ++m) {
    const auto reference = standalone(circuit, parameterSets[m], options);
    EXPECT_TRUE(bitIdentical(results[m].branches().front().state, reference))
        << "member " << m << " diverges from its standalone simulate";
  }
}

TEST(BatchDifferential, FuzzFusionBlockingDouble) {
  random::Rng rng(0xbadc0de);
  for (int trial = 0; trial < 6; ++trial) {
    sim::BatchOptions options;
    options.fusion = true;
    options.fusionOptions.blocking = trial % 2 == 0;
    fuzzOnce<double>(rng, options);
  }
}

TEST(BatchDifferential, FuzzFusionOffDouble) {
  random::Rng rng(1234);
  for (int trial = 0; trial < 4; ++trial) {
    sim::BatchOptions options;
    options.fusion = false;
    fuzzOnce<double>(rng, options);
  }
}

TEST(BatchDifferential, FuzzFloat) {
  random::Rng rng(5678);
  for (int trial = 0; trial < 4; ++trial) {
    sim::BatchOptions options;
    options.fusion = trial % 2 == 0;
    fuzzOnce<float>(rng, options);
  }
}

TEST(BatchDifferential, ThreadCountDoesNotChangeBits) {
  random::Rng rng(42);
  const int n = 6;
  QCircuit<double> circuit(n);
  test::addRandomGates(circuit, 40, rng);

  std::vector<std::vector<double>> parameterSets(16);
  {
    sim::BatchedSimulation<double> probe(circuit);
    for (auto& values : parameterSets) {
      values.resize(probe.nbParameters());
      for (auto& value : values) value = rng.uniform(-3.0, 3.0);
    }
  }

  sim::BatchOptions serial;
  serial.nbThreads = 1;
  sim::BatchOptions wide;
  wide.nbThreads = 4;
  auto a = sim::BatchedSimulation<double>(circuit, serial).run(parameterSets);
  auto b = sim::BatchedSimulation<double>(circuit, wide).run(parameterSets);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    EXPECT_TRUE(bitIdentical(a[m].branches().front().state,
                             b[m].branches().front().state))
        << "member " << m << " depends on the thread count";
  }
}

// ---- re-entrancy (TSan-covered: suite name matches the Batch filter) ---

TEST(BatchReentrancy, EightThreadsShareOneShapePlan) {
  // One engine, eight worker threads, every thread rebinding + applying
  // clones of the same master plan.  Under TSan this validates that no
  // mutable state is shared across members.
  random::Rng rng(99);
  const int n = 7;
  QCircuit<double> circuit(n);
  test::addRandomGates(circuit, 30, rng);

  sim::BatchOptions options;
  options.nbThreads = 8;
  sim::BatchedSimulation<double> engine(circuit, options);

  std::vector<std::vector<double>> parameterSets(32);
  for (auto& values : parameterSets) {
    values.resize(engine.nbParameters());
    for (auto& value : values) value = rng.uniform(-3.0, 3.0);
  }

  std::atomic<std::size_t> delivered{0};
  engine.forEach(parameterSets, [&](std::size_t, Simulation<double>&& sim) {
    ASSERT_EQ(sim.branches().size(), 1u);
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(delivered.load(), parameterSets.size());

  // And the parallel results still match the standalone reference.
  auto results = engine.run(parameterSets);
  const auto reference = standalone(circuit, parameterSets[17], options);
  EXPECT_TRUE(bitIdentical(results[17].branches().front().state, reference));
}

// ---- prefix cache ------------------------------------------------------

TEST(BatchPrefix, LeadingParameterFreeLayerIsCached) {
  // H layer then a parametrized layer: the H blocks are member-invariant
  // and must be absorbed into the cached prefix without changing bits.
  const int n = 4;
  QCircuit<double> circuit(n);
  for (int q = 0; q < n; ++q) circuit.push_back(Hadamard<double>(q));
  for (int q = 0; q < n; ++q) {
    circuit.push_back(RotationZ<double>(q, 0.1 * (q + 1)));
  }

  sim::BatchOptions options;
  sim::BatchedSimulation<double> engine(circuit, options);
  EXPECT_GT(engine.prefixPlanCount() + engine.prefixBlockCount(), 0u);

  std::vector<std::vector<double>> parameterSets = {
      {0.3, -0.4, 0.5, 2.0}, {1.0, 1.0, 1.0, 1.0}};
  auto results = engine.run(parameterSets);
  for (std::size_t m = 0; m < parameterSets.size(); ++m) {
    EXPECT_TRUE(bitIdentical(results[m].branches().front().state,
                             standalone(circuit, parameterSets[m], options)));
  }
}

TEST(BatchPrefix, FullyParameterFreeCircuitRunsFromCacheAlone) {
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(CX<double>(1, 2));

  sim::BatchOptions options;
  sim::BatchedSimulation<double> engine(circuit, options);
  EXPECT_EQ(engine.nbParameters(), 0u);

  std::vector<std::vector<double>> parameterSets(3);
  auto results = engine.run(parameterSets);
  const auto reference = standalone(circuit, {}, options);
  for (const auto& result : results) {
    EXPECT_TRUE(bitIdentical(result.branches().front().state, reference));
  }
}

// ---- engine surface ----------------------------------------------------

TEST(BatchEngine, RebindBetweenRunsChangesResults) {
  // Engine-level stale-theta regression: the second run must see the new
  // parameters, not the matrices bound during the first.
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(RotationZZ<double>(0, 1, 0.0));

  sim::BatchedSimulation<double> engine(circuit);
  auto first = engine.run({{0.3}});
  auto second = engine.run({{-2.1}});
  EXPECT_FALSE(bitIdentical(first[0].branches().front().state,
                            second[0].branches().front().state));
  EXPECT_TRUE(bitIdentical(second[0].branches().front().state,
                           standalone(circuit, {-2.1}, sim::BatchOptions{})));
}

TEST(BatchEngine, ParametersOfRoundTrips) {
  QCircuit<double> circuit(2);
  circuit.push_back(RotationX<double>(0, 0.25));
  circuit.push_back(CPhase<double>(0, 1, -0.5));
  const auto values =
      sim::BatchedSimulation<double>::parametersOf(circuit);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_NEAR(values[0], 0.25, test::tol<double>());
  EXPECT_NEAR(values[1], -0.5, test::tol<double>());
}

TEST(BatchEngine, SimulateBatchEntryPoint) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(RotationZZ<double>(0, 1, 0.0));

  auto results = circuit.simulateBatch({{0.7}, {1.4}});
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t m = 0; m < 2; ++m) {
    const auto reference =
        standalone(circuit, {0.7 + 0.7 * m}, sim::BatchOptions{});
    EXPECT_TRUE(bitIdentical(results[m].branches().front().state, reference));
  }
}

TEST(BatchEngine, RejectsMeasurementsAndWrongArity) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  EXPECT_THROW(sim::BatchedSimulation<double>{circuit},
               InvalidArgumentError);

  QCircuit<double> unitary(1);
  unitary.push_back(RotationX<double>(0, 0.0));
  sim::BatchedSimulation<double> engine(unitary);
  EXPECT_THROW(engine.run({{0.1, 0.2}}), InvalidArgumentError);
}

}  // namespace
}  // namespace qclab

/// \file test_trotter.cpp
/// \brief Unit tests for the Trotterized Ising time evolution against the
/// exact unitary exp(-i t H) from the Hermitian matrix exponential.

#include <gtest/gtest.h>

#include "qclab/dense/expm.hpp"
#include "test_helpers.hpp"

namespace qclab::algorithms {
namespace {

using C = std::complex<double>;
using M = dense::Matrix<double>;

TEST(ExpUnitary, DiagonalCase) {
  M h(2, 2);
  h(0, 0) = C(1.0);
  h(1, 1) = C(-2.0);
  const auto u = dense::expUnitary(h, 0.5);
  EXPECT_NEAR(std::abs(u(0, 0) - std::polar(1.0, -0.5)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(u(1, 1) - std::polar(1.0, 1.0)), 0.0, 1e-12);
  EXPECT_TRUE(u.isUnitary(1e-12));
}

TEST(ExpUnitary, PauliXRotation) {
  // exp(-i t X) == RX(2t).
  const double t = 0.37;
  const auto u = dense::expUnitary(dense::pauliX<double>(), t);
  qclab::test::expectMatrixNear(
      u, qgates::RotationX<double>(0, 2.0 * t).matrix(), 1e-12);
}

TEST(ExpUnitary, GroupProperty) {
  random::Rng rng(1);
  M a(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = C(rng.normal(), rng.normal());
  M h = a + a.dagger();
  const auto u1 = dense::expUnitary(h, 0.3);
  const auto u2 = dense::expUnitary(h, 0.7);
  const auto u3 = dense::expUnitary(h, 1.0);
  qclab::test::expectMatrixNear(u1 * u2, u3, 1e-9);
  EXPECT_TRUE(u3.isUnitary(1e-10));
}

TEST(TrotterStep, SingleStepStructure) {
  const auto step = trotterStepIsing<double>(4, 1.0, 0.5, 0.1);
  // 3 bonds + 4 sites.
  EXPECT_EQ(step.nbObjects(), 7u);
  const auto periodic = trotterStepIsing<double>(4, 1.0, 0.5, 0.1, true);
  EXPECT_EQ(periodic.nbObjects(), 8u);
  EXPECT_TRUE(step.matrix().isUnitary(1e-12));
}

TEST(TrotterStep, ExactForCommutingTerms) {
  // With h = 0, all terms commute: one step of any size is exact.
  const int n = 3;
  const double t = 0.8;
  const auto hamiltonian = isingHamiltonian<double>(n, 1.0, 0.0);
  const auto exact = dense::expUnitary(hamiltonian.matrix(), t);
  const auto circuit = trotterIsing<double>(n, 1.0, 0.0, t, 1);
  EXPECT_TRUE(dense::equalUpToGlobalPhase(circuit.matrix(), exact, 1e-10));
}

TEST(TrotterStep, ExactForFieldOnly) {
  // With J = 0, a single step is exact as well.
  const int n = 3;
  const double t = 0.6;
  const auto hamiltonian = isingHamiltonian<double>(n, 0.0, 0.7);
  const auto exact = dense::expUnitary(hamiltonian.matrix(), t);
  const auto circuit = trotterIsing<double>(n, 0.0, 0.7, t, 1);
  EXPECT_TRUE(dense::equalUpToGlobalPhase(circuit.matrix(), exact, 1e-10));
}

TEST(Trotter, FirstOrderConverges) {
  const int n = 3;
  const double t = 1.0, coupling = 1.0, field = 0.5;
  const auto exact =
      dense::expUnitary(isingHamiltonian<double>(n, coupling, field).matrix(),
                        t);
  double previousError = 1e9;
  for (int steps : {2, 8, 32}) {
    const auto circuit =
        trotterIsing<double>(n, coupling, field, t, steps);
    // Compare action on a fixed state (global phase irrelevant).
    random::Rng rng(5);
    const auto psi = qclab::test::randomState<double>(n, rng);
    const auto approx = circuit.simulate(psi).state(0);
    const auto reference = exact.apply(psi);
    double error = 0.0;
    // Distance up to global phase: 1 - |<ref|approx>|.
    error = 1.0 - std::abs(dense::inner(reference, approx));
    EXPECT_LT(error, previousError * 0.5) << steps;
    previousError = error;
  }
  EXPECT_LT(previousError, 5e-4);
}

TEST(Trotter, SecondOrderBeatsFirstOrder) {
  const int n = 3;
  const double t = 1.0, coupling = 1.0, field = 0.5;
  const auto exact =
      dense::expUnitary(isingHamiltonian<double>(n, coupling, field).matrix(),
                        t);
  random::Rng rng(6);
  const auto psi = qclab::test::randomState<double>(n, rng);
  const auto reference = exact.apply(psi);

  const int steps = 8;
  const auto first =
      trotterIsing<double>(n, coupling, field, t, steps).simulate(psi).state(0);
  const auto second = trotterIsing<double>(n, coupling, field, t, steps,
                                           TrotterOrder::kSecond)
                          .simulate(psi)
                          .state(0);
  const double errorFirst = 1.0 - std::abs(dense::inner(reference, first));
  const double errorSecond = 1.0 - std::abs(dense::inner(reference, second));
  EXPECT_LT(errorSecond, errorFirst / 4.0);
}

TEST(Trotter, EnergyIsConserved) {
  // exp(-i t H) commutes with H: <H> is invariant under exact evolution,
  // and nearly invariant under fine Trotterization.
  const int n = 4;
  const auto hamiltonian = isingHamiltonian<double>(n, 1.0, 0.5);
  random::Rng rng(7);
  const auto psi = qclab::test::randomState<double>(n, rng);
  const double before = hamiltonian.expectation(psi);
  const auto circuit = trotterIsing<double>(n, 1.0, 0.5, 0.5, 64,
                                            TrotterOrder::kSecond);
  const auto evolved = circuit.simulate(psi).state(0);
  const double after = hamiltonian.expectation(evolved);
  EXPECT_NEAR(after, before, 1e-3);
}

TEST(Trotter, FusesWellUnderTranspiler) {
  // Consecutive steps produce adjacent same-axis rotations at the layer
  // seams; the optimizer must shrink the circuit without changing it.
  const auto circuit = trotterIsing<double>(4, 1.0, 0.5, 1.0, 6);
  const auto optimized = transpile::optimize(circuit);
  EXPECT_LE(optimized.nbObjectsRecursive(), circuit.nbObjectsRecursive());
  qclab::test::expectMatrixNear(optimized.matrix(), circuit.matrix(), 1e-10);
}

TEST(Trotter, Validation) {
  EXPECT_THROW(trotterIsing<double>(4, 1.0, 0.5, 1.0, 0),
               InvalidArgumentError);
  EXPECT_THROW(trotterStepIsing<double>(1, 1.0, 0.5, 0.1),
               InvalidArgumentError);
}

class TrotterStepsSweep : public ::testing::TestWithParam<int> {};

TEST_P(TrotterStepsSweep, ErrorScalesInverselyWithSteps) {
  const int steps = GetParam();
  const int n = 2;
  const double t = 1.0;
  const auto exact =
      dense::expUnitary(isingHamiltonian<double>(n, 1.0, 1.0).matrix(), t);
  random::Rng rng(8);
  const auto psi = qclab::test::randomState<double>(n, rng);
  const auto reference = exact.apply(psi);
  const auto approx =
      trotterIsing<double>(n, 1.0, 1.0, t, steps).simulate(psi).state(0);
  const double error = 1.0 - std::abs(dense::inner(reference, approx));
  // First-order error ~ t^2/(2 steps) * ||[A,B]||; generous envelope.
  EXPECT_LT(error, 2.0 / steps);
}

INSTANTIATE_TEST_SUITE_P(Steps, TrotterStepsSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace qclab::algorithms

/// \file test_bench_compare.cpp
/// \brief Tests of the bench-regression harness plumbing in
/// qclab/obs/benchjson.hpp: the minimal JSON parser/serializer round trip,
/// trajectory merging, and — the actual CI gate — the baseline comparator
/// verdicts, including failing on an injected >20% slowdown at tolerance
/// 0.2.  Pure data processing, so these run identically in
/// QCLAB_OBS_DISABLED builds.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "qclab/obs/benchjson.hpp"
#include "qclab/obs/report.hpp"
#include "qclab/util/errors.hpp"

namespace {

namespace bj = qclab::obs::benchjson;

/// Builds a one-bench trajectory with the given gated timing value plus an
/// informational counter that must never be gated.
bj::JsonValue trajectoryWithTiming(const std::string& benchName,
                                   const std::string& resultName,
                                   double ns, const char* unit = "ns/op") {
  qclab::obs::Report report(benchName);
  report.add(resultName, ns, unit);
  report.add("sweeps/informational", 42.0, "sweeps");
  std::vector<bj::JsonValue> reports;
  reports.push_back(bj::parseJson(report.json()));
  return bj::mergeTrajectory("test", std::move(reports));
}

TEST(BenchJson, ParseRoundTripsEscapesAndNesting) {
  const std::string text =
      "{\"s\": \"a\\\"b\\\\c\\n\\u0041\", \"n\": -2.5e3, \"b\": true, "
      "\"z\": null, \"a\": [1, {\"k\": 2}], \"o\": {}}";
  const bj::JsonValue value = bj::parseJson(text);
  ASSERT_TRUE(value.isObject());
  EXPECT_EQ(value.find("s")->string, "a\"b\\c\nA");
  EXPECT_EQ(value.find("n")->number, -2500.0);
  EXPECT_TRUE(value.find("b")->boolean);
  EXPECT_EQ(value.find("z")->kind, bj::JsonValue::Kind::kNull);
  ASSERT_EQ(value.find("a")->array.size(), 2u);
  EXPECT_EQ(value.find("a")->array[1].find("k")->number, 2.0);

  // Serializer output reparses to the same structure.
  const bj::JsonValue again = bj::parseJson(bj::dumpJson(value));
  EXPECT_EQ(again.find("s")->string, "a\"b\\c\nA");
  EXPECT_EQ(again.find("a")->array[1].find("k")->number, 2.0);
}

TEST(BenchJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(bj::parseJson("{\"a\": }"), qclab::InvalidArgumentError);
  EXPECT_THROW(bj::parseJson("[1, 2"), qclab::InvalidArgumentError);
  EXPECT_THROW(bj::parseJson("{} trailing"), qclab::InvalidArgumentError);
  EXPECT_THROW(bj::parseJson("\"\\q\""), qclab::InvalidArgumentError);
}

TEST(BenchJson, ParsesObsReportJsonAndSchemaIsV4) {
  qclab::obs::Report report("bench_demo");
  report.add("kernel/dense1", 123.5, "ns/op");
  const bj::JsonValue value = bj::parseJson(report.json());
  ASSERT_TRUE(value.isObject());
  EXPECT_EQ(value.stringOr("schema", ""), "qclab-obs-v4");
  EXPECT_EQ(value.stringOr("name", ""), "bench_demo");
  const bj::JsonValue* results = value.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_TRUE(results->isArray());
  ASSERT_EQ(results->array.size(), 1u);
  EXPECT_EQ(results->array[0].stringOr("name", ""), "kernel/dense1");
  EXPECT_EQ(results->array[0].find("value")->number, 123.5);
}

TEST(BenchJson, MergeTrajectoryShape) {
  const bj::JsonValue trajectory =
      trajectoryWithTiming("bench_demo", "total/run", 1000.0);
  EXPECT_EQ(trajectory.stringOr("schema", ""), bj::kTrajectorySchema);
  EXPECT_EQ(trajectory.stringOr("label", ""), "test");
  const bj::JsonValue* benches = trajectory.find("benches");
  ASSERT_NE(benches, nullptr);
  ASSERT_EQ(benches->array.size(), 1u);
  EXPECT_EQ(benches->array[0].stringOr("name", ""), "bench_demo");

  bj::JsonValue notAnObject;  // null
  std::vector<bj::JsonValue> bad;
  bad.push_back(notAnObject);
  EXPECT_THROW(bj::mergeTrajectory("x", std::move(bad)),
               qclab::InvalidArgumentError);
}

TEST(BenchCompare, WithinToleranceIsOk) {
  const auto baseline = trajectoryWithTiming("b", "t", 100.0);
  const auto current = trajectoryWithTiming("b", "t", 115.0);
  const auto outcome = bj::compareTrajectories(baseline, current, 0.2);
  ASSERT_EQ(outcome.rows.size(), 1u);
  EXPECT_EQ(outcome.rows[0].verdict, bj::Verdict::kOk);
  EXPECT_NEAR(outcome.rows[0].ratio, 1.15, 1e-12);
  EXPECT_FALSE(outcome.failed());
}

TEST(BenchCompare, FailsOnInjectedTwentyFivePercentSlowdown) {
  // The acceptance scenario: a >20% slowdown at tolerance 0.2 must fail.
  const auto baseline = trajectoryWithTiming("b", "t", 100.0);
  const auto current = trajectoryWithTiming("b", "t", 125.0);
  const auto outcome = bj::compareTrajectories(baseline, current, 0.2);
  ASSERT_EQ(outcome.rows.size(), 1u);
  EXPECT_EQ(outcome.rows[0].verdict, bj::Verdict::kRegression);
  EXPECT_EQ(outcome.regressions, 1);
  EXPECT_TRUE(outcome.failed());
}

TEST(BenchCompare, ImprovementIsReportedButNeverFails) {
  const auto baseline = trajectoryWithTiming("b", "t", 100.0);
  const auto current = trajectoryWithTiming("b", "t", 70.0);
  const auto outcome = bj::compareTrajectories(baseline, current, 0.2);
  ASSERT_EQ(outcome.rows.size(), 1u);
  EXPECT_EQ(outcome.rows[0].verdict, bj::Verdict::kImprovement);
  EXPECT_EQ(outcome.improvements, 1);
  EXPECT_FALSE(outcome.failed());
}

TEST(BenchCompare, MissingBaselineTimingFailsNewTimingDoesNot) {
  const auto baseline = trajectoryWithTiming("b", "t", 100.0);
  const auto renamed = trajectoryWithTiming("b", "t2", 100.0);
  const auto outcome = bj::compareTrajectories(baseline, renamed, 0.2);
  ASSERT_EQ(outcome.rows.size(), 2u);
  EXPECT_EQ(outcome.rows[0].verdict, bj::Verdict::kMissing);
  EXPECT_EQ(outcome.rows[1].verdict, bj::Verdict::kNew);
  EXPECT_EQ(outcome.missing, 1);
  EXPECT_TRUE(outcome.failed());
}

TEST(BenchCompare, CounterUnitsAreNotGated) {
  // Same timings but wildly different "sweeps" counters: still ok, and the
  // counter never shows up as a compared row.
  const auto baseline = trajectoryWithTiming("b", "t", 100.0);
  const auto current = trajectoryWithTiming("b", "t", 100.0);
  const auto outcome = bj::compareTrajectories(baseline, current, 0.0);
  ASSERT_EQ(outcome.rows.size(), 1u);
  EXPECT_EQ(outcome.rows[0].name, "b/t");
}

TEST(BenchCompare, PerTrajectoryTimingsAreGated) {
  // bench_trajectory reports "ns/trajectory" — a lower-is-better time
  // unit that must be gated like "ns/op".
  const auto baseline =
      trajectoryWithTiming("bench_trajectory", "ghz/n=20", 1000.0,
                           "ns/trajectory");
  const auto current =
      trajectoryWithTiming("bench_trajectory", "ghz/n=20", 1500.0,
                           "ns/trajectory");
  const auto outcome = bj::compareTrajectories(baseline, current, 0.2);
  ASSERT_EQ(outcome.rows.size(), 1u);
  EXPECT_EQ(outcome.rows[0].verdict, bj::Verdict::kRegression);
  EXPECT_TRUE(outcome.failed());
}

TEST(BenchCompare, ZeroBaselineOnlyChecksPresence) {
  const auto baseline = trajectoryWithTiming("b", "t", 0.0);
  const auto current = trajectoryWithTiming("b", "t", 5000.0);
  const auto outcome = bj::compareTrajectories(baseline, current, 0.2);
  ASSERT_EQ(outcome.rows.size(), 1u);
  EXPECT_EQ(outcome.rows[0].verdict, bj::Verdict::kOk);
  EXPECT_FALSE(outcome.failed());
}

TEST(BenchCompare, RejectsNegativeToleranceAndNonTrajectories) {
  const auto trajectory = trajectoryWithTiming("b", "t", 100.0);
  EXPECT_THROW(bj::compareTrajectories(trajectory, trajectory, -0.1),
               qclab::InvalidArgumentError);
  const bj::JsonValue notATrajectory = bj::parseJson("{\"benches\": 3}");
  EXPECT_THROW(bj::compareTrajectories(notATrajectory, trajectory, 0.2),
               qclab::InvalidArgumentError);
}

TEST(BenchCompare, ClassificationsComeFromRooflineSections) {
  // A v3 report embeds its roofline verdict; the comparator surfaces it
  // per bench for failure diagnosis.
  const auto trajectory = bj::parseJson(
      "{\"schema\": \"qclab-bench-trajectory-v1\", \"label\": \"t\","
      " \"benches\": ["
      "  {\"name\": \"bench_a\","
      "   \"roofline\": {\"classification\": \"memory-bound\"}},"
      "  {\"name\": \"bench_b\","
      "   \"roofline\": {\"classification\": \"compute-bound\"}},"
      "  {\"name\": \"bench_old\"},"
      "  {\"name\": \"bench_empty\","
      "   \"roofline\": {\"classification\": \"\"}}"
      "]}");
  const auto classifications = bj::benchClassifications(trajectory);
  ASSERT_EQ(classifications.size(), 2u);
  EXPECT_EQ(classifications.at("bench_a"), "memory-bound");
  EXPECT_EQ(classifications.at("bench_b"), "compute-bound");
  EXPECT_EQ(classifications.count("bench_old"), 0u);
  EXPECT_EQ(classifications.count("bench_empty"), 0u);

  // Pre-v3 trajectories (no roofline anywhere) degrade to an empty map.
  const auto old = trajectoryWithTiming("b", "t", 100.0);
  // A real report always carries a roofline section now, so strip it to
  // emulate an old baseline.
  EXPECT_TRUE(bj::benchClassifications(bj::parseJson(
                  "{\"benches\": [{\"name\": \"x\"}]}"))
                  .empty());

  // Reports rendered by this build do carry a classification.
  const auto fromReport = bj::benchClassifications(old);
  EXPECT_EQ(fromReport.count("b"), 1u);
}

}  // namespace

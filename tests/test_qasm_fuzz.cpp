/// \file test_qasm_fuzz.cpp
/// \brief Robustness: the OpenQASM importer must reject malformed input
/// with QasmParseError — never crash, hang, or accept garbage silently.

#include <gtest/gtest.h>

#include "qclab/io/qasm.hpp"
#include "test_helpers.hpp"

namespace qclab::io {
namespace {

/// Parsing must either succeed or throw QasmParseError / a library Error.
void expectGracefulParse(const std::string& source) {
  try {
    const auto circuit = parseQasm<double>(source);
    EXPECT_GE(circuit.nbQubits(), 1);
  } catch (const Error&) {
    // Expected failure mode.
  }
}

TEST(QasmFuzz, RandomPrintableGarbage) {
  random::Rng rng(1);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 []();,->+-*/.\"\n";
  for (int trial = 0; trial < 200; ++trial) {
    std::string source = "OPENQASM 2.0;\nqreg q[3];\n";
    const auto length = rng.uniformInt(60);
    for (std::uint64_t i = 0; i < length; ++i) {
      source += alphabet[rng.uniformInt(alphabet.size())];
    }
    expectGracefulParse(source);
  }
}

TEST(QasmFuzz, RandomBytes) {
  random::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::string source;
    const auto length = rng.uniformInt(80);
    for (std::uint64_t i = 0; i < length; ++i) {
      source += static_cast<char>(rng.uniformInt(256));
    }
    expectGracefulParse(source);
  }
}

TEST(QasmFuzz, TruncatedValidPrograms) {
  QCircuit<double> circuit(3);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(qgates::CX<double>(0, 1));
  circuit.push_back(qgates::RotationZ<double>(2, 0.75));
  circuit.push_back(Measurement<double>(1));
  const auto full = circuit.toQASM();
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    expectGracefulParse(full.substr(0, cut));
  }
}

TEST(QasmFuzz, MutatedValidPrograms) {
  QCircuit<double> circuit(2);
  circuit.push_back(qgates::Hadamard<double>(0));
  circuit.push_back(qgates::CPhase<double>(0, 1, 0.5));
  const auto base = circuit.toQASM();
  random::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = base;
    const auto position = rng.uniformInt(mutated.size());
    mutated[position] = static_cast<char>(rng.uniformInt(128));
    expectGracefulParse(mutated);
  }
}

TEST(QasmFuzz, DeeplyNestedAngleExpressions) {
  // Heavily parenthesized but valid.
  std::string angle = "pi";
  for (int depth = 0; depth < 40; ++depth) {
    angle = "(" + angle + "/2)";
  }
  const auto circuit = parseQasm<double>(
      "OPENQASM 2.0;\nqreg q[1];\nrx(" + angle + ") q[0];\n");
  EXPECT_EQ(circuit.nbObjects(), 1u);
  // Unbalanced version fails cleanly.
  expectGracefulParse("OPENQASM 2.0;\nqreg q[1];\nrx((((pi) q[0];\n");
}

TEST(QasmFuzz, HugeIndicesAndCounts) {
  expectGracefulParse("OPENQASM 2.0;\nqreg q[999999999999999999999];\n");
  expectGracefulParse("OPENQASM 2.0;\nqreg q[2];\nh q[999999999];\n");
  expectGracefulParse("OPENQASM 2.0;\nqreg q[0];\n");
  expectGracefulParse("OPENQASM 2.0;\nqreg q[-3];\n");
}

}  // namespace
}  // namespace qclab::io

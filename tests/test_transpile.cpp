/// \file test_transpile.cpp
/// \brief Unit tests for the circuit optimization passes; every pass must
/// preserve the circuit unitary exactly.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace qclab::transpile {
namespace {

using namespace qclab::qgates;
using M = dense::Matrix<double>;

TEST(Flatten, InlinesNestedCircuitsWithOffsets) {
  QCircuit<double> inner(1, 1);
  inner.push_back(PauliX<double>(0));
  QCircuit<double> middle(2, 1);
  middle.push_back(QCircuit<double>(inner));
  middle.push_back(Hadamard<double>(0));
  QCircuit<double> root(3);
  root.push_back(Hadamard<double>(0));
  root.push_back(QCircuit<double>(middle));

  const auto flat = flatten(root);
  EXPECT_EQ(flat.nbObjects(), 3u);
  for (const auto& object : flat) {
    EXPECT_NE(object->objectType(), ObjectType::kCircuit);
  }
  qclab::test::expectMatrixNear(flat.matrix(), root.matrix());
}

TEST(Flatten, PreservesMeasurements) {
  QCircuit<double> sub(1, 1);
  sub.push_back(Measurement<double>(0));
  QCircuit<double> root(2);
  root.push_back(Hadamard<double>(1));
  root.push_back(QCircuit<double>(sub));
  const auto flat = flatten(root);
  EXPECT_EQ(flat.nbObjects(), 2u);
  EXPECT_EQ(flat.objectAt(1).objectType(), ObjectType::kMeasurement);
  EXPECT_EQ(flat.objectAt(1).qubits(), std::vector<int>{1});
}

TEST(RemoveTrivial, DropsIdentitiesAndZeroRotations) {
  QCircuit<double> circuit(2);
  circuit.push_back(Identity<double>(0));
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(RotationZ<double>(1, 0.0));
  circuit.push_back(Phase<double>(1, 0.0));
  circuit.push_back(CX<double>(0, 1));
  const auto cleaned = removeTrivialGates(circuit);
  EXPECT_EQ(cleaned.nbObjects(), 2u);
  qclab::test::expectMatrixNear(cleaned.matrix(), circuit.matrix());
}

TEST(CancelInverse, RemovesAdjacentPairs) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(SGate<double>(1));
  circuit.push_back(SdgGate<double>(1));
  const auto cleaned = cancelInversePairs(circuit);
  EXPECT_EQ(cleaned.nbObjects(), 0u);
}

TEST(CancelInverse, CascadesThroughNewAdjacency) {
  // X H H X: after H H cancel, the X pair becomes adjacent and cancels too.
  QCircuit<double> circuit(1);
  circuit.push_back(PauliX<double>(0));
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(PauliX<double>(0));
  const auto cleaned = cancelInversePairs(circuit);
  EXPECT_EQ(cleaned.nbObjects(), 0u);
}

TEST(CancelInverse, RespectsInterveningGatesOnSameQubit) {
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(TGate<double>(0));
  circuit.push_back(Hadamard<double>(0));
  const auto cleaned = cancelInversePairs(circuit);
  EXPECT_EQ(cleaned.nbObjects(), 3u);
}

TEST(CancelInverse, IgnoresDisjointInterveningGates) {
  // H(0), X(1), H(0): the X on another qubit does not block cancellation.
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(PauliX<double>(1));
  circuit.push_back(Hadamard<double>(0));
  const auto cleaned = cancelInversePairs(circuit);
  EXPECT_EQ(cleaned.nbObjects(), 1u);
  qclab::test::expectMatrixNear(cleaned.matrix(), circuit.matrix());
}

TEST(CancelInverse, MeasurementBlocksCancellation) {
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Hadamard<double>(0));
  const auto cleaned = cancelInversePairs(circuit);
  EXPECT_EQ(cleaned.nbObjects(), 3u);
}

TEST(FuseRotations, MergesSameAxisRuns) {
  QCircuit<double> circuit(1);
  circuit.push_back(RotationX<double>(0, 0.3));
  circuit.push_back(RotationX<double>(0, 0.4));
  const auto fused = fuseRotations(circuit);
  ASSERT_EQ(fused.nbObjects(), 1u);
  const auto& gate =
      static_cast<const RotationX<double>&>(fused.objectAt(0));
  EXPECT_NEAR(gate.theta(), 0.7, 1e-14);
  qclab::test::expectMatrixNear(fused.matrix(), circuit.matrix());
}

TEST(FuseRotations, OppositeAnglesVanish) {
  QCircuit<double> circuit(1);
  circuit.push_back(RotationY<double>(0, 0.9));
  circuit.push_back(RotationY<double>(0, -0.9));
  EXPECT_EQ(fuseRotations(circuit).nbObjects(), 0u);
}

TEST(FuseRotations, DifferentAxesUntouched) {
  QCircuit<double> circuit(1);
  circuit.push_back(RotationX<double>(0, 0.3));
  circuit.push_back(RotationY<double>(0, 0.4));
  EXPECT_EQ(fuseRotations(circuit).nbObjects(), 2u);
}

TEST(FuseRotations, PhaseCPhaseAndTwoQubit) {
  QCircuit<double> circuit(2);
  circuit.push_back(Phase<double>(0, 0.2));
  circuit.push_back(Phase<double>(0, 0.3));
  circuit.push_back(CPhase<double>(0, 1, 0.4));
  circuit.push_back(CPhase<double>(0, 1, 0.5));
  circuit.push_back(RotationZZ<double>(0, 1, 0.6));
  circuit.push_back(RotationZZ<double>(0, 1, 0.7));
  const auto fused = fuseRotations(circuit);
  EXPECT_EQ(fused.nbObjects(), 3u);
  qclab::test::expectMatrixNear(fused.matrix(), circuit.matrix(), 1e-12);
}

TEST(FuseRotations, ControlledRotations) {
  QCircuit<double> circuit(2);
  circuit.push_back(CRotationX<double>(0, 1, 0.3));
  circuit.push_back(CRotationX<double>(0, 1, 0.4));
  // Different control state: must not fuse.
  circuit.push_back(CRotationY<double>(0, 1, 0.3, 0));
  circuit.push_back(CRotationY<double>(0, 1, 0.4, 1));
  const auto fused = fuseRotations(circuit);
  EXPECT_EQ(fused.nbObjects(), 3u);
  qclab::test::expectMatrixNear(fused.matrix(), circuit.matrix(), 1e-12);
}

TEST(MergeSingle, CollapsesRunsToOneGate) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(TGate<double>(0));
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(PauliX<double>(1));
  const auto merged = mergeSingleQubitGates(circuit);
  EXPECT_EQ(merged.nbObjects(), 2u);  // one MatrixGate1 + untouched X
  qclab::test::expectMatrixNear(merged.matrix(), circuit.matrix(), 1e-12);
}

TEST(MergeSingle, RunsInterruptedByTwoQubitGate) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Hadamard<double>(0));
  const auto merged = mergeSingleQubitGates(circuit);
  EXPECT_EQ(merged.nbObjects(), 3u);
  qclab::test::expectMatrixNear(merged.matrix(), circuit.matrix(), 1e-12);
}

TEST(MergeSingle, IdentityRunsVanish) {
  QCircuit<double> circuit(1);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Hadamard<double>(0));
  EXPECT_EQ(mergeSingleQubitGates(circuit).nbObjects(), 0u);
}

TEST(Optimize, ShrinksRedundantCircuits) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(RotationZ<double>(1, 0.4));
  circuit.push_back(RotationZ<double>(1, -0.4));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Identity<double>(0));
  EXPECT_EQ(optimize(circuit).nbObjectsRecursive(), 0u);
}

TEST(Optimize, MergesSingleQubitRuns) {
  // H T S on one qubit have no same-axis fusions or inverse pairs; only
  // the single-qubit merge pass can collapse them to one MatrixGate1.
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(TGate<double>(0));
  circuit.push_back(SGate<double>(0));
  circuit.push_back(CX<double>(0, 1));
  const auto optimized = optimize(circuit);
  EXPECT_EQ(optimized.nbObjects(), 2u);  // MatrixGate1 + CX
  qclab::test::expectMatrixNear(optimized.matrix(), circuit.matrix(), 1e-12);
}

class OptimizePropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(OptimizePropertySweep, PreservesUnitaryOnRandomCircuits) {
  const auto circuit =
      qclab::test::randomCircuit<double>(4, 40, GetParam());
  const auto optimized = optimize(circuit);
  EXPECT_LE(optimized.nbObjectsRecursive(), circuit.nbObjectsRecursive());
  qclab::test::expectMatrixNear(optimized.matrix(), circuit.matrix(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizePropertySweep,
                         ::testing::Range(1, 11));

TEST(Optimize, RotationChainsFuseToSingleGate) {
  // 100 small same-axis rotations collapse to one.
  QCircuit<double> circuit(1);
  for (int i = 0; i < 100; ++i) {
    circuit.push_back(RotationZ<double>(0, 0.01));
  }
  const auto optimized = optimize(circuit);
  ASSERT_EQ(optimized.nbObjects(), 1u);
  const auto& gate =
      static_cast<const RotationZ<double>&>(optimized.objectAt(0));
  EXPECT_NEAR(gate.theta(), 1.0, 1e-12);
}

}  // namespace
}  // namespace qclab::transpile

/// \file test_fusion.cpp
/// \brief Tests of the simulation-time gate-fusion engine: scheduler plan
/// shapes, fused-vs-unfused state equivalence (including the sparse-kron
/// backend as an independent reference), measurement-interleaved runs, and
/// the SimulateOptions wiring.

#include <gtest/gtest.h>

#include <complex>
#include <memory>
#include <vector>

#include "test_helpers.hpp"

namespace qclab::sim {
namespace {

using namespace qclab::qgates;

/// Gate refs (offset 0) over the flat object list of `circuit`.
template <typename T>
std::vector<GateRef<T>> gateRefs(const QCircuit<T>& circuit) {
  std::vector<GateRef<T>> refs;
  for (const auto& object : circuit) {
    refs.push_back({static_cast<const QGate<T>*>(object.get()), 0});
  }
  return refs;
}

// ---- scheduler plan shapes --------------------------------------------

TEST(FusionScheduler, MergesRunWithinWindow) {
  QCircuit<double> circuit(3);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(RotationZ<double>(1, 0.4));
  circuit.push_back(CX<double>(1, 2));

  FusionOptions options;
  options.maxQubits = 3;
  const auto plan = fuseGates(gateRefs(circuit), 3, options);
  ASSERT_EQ(plan.blocks.size(), 1u);
  EXPECT_EQ(plan.blocks[0].qubits, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(plan.blocks[0].diagonal);
  EXPECT_EQ(plan.blocks[0].gatesIn, 4u);

  const auto stats = plan.stats();
  EXPECT_EQ(stats.gatesIn, 4u);
  EXPECT_EQ(stats.blocksOut, 1u);
  EXPECT_EQ(stats.sweepsSaved, 3u);
}

TEST(FusionScheduler, FlushesWhenWindowOverflows) {
  // Two disjoint qubit pairs cannot share a 2-qubit window.
  QCircuit<double> circuit(4);
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(CX<double>(2, 3));

  FusionOptions options;
  options.maxQubits = 2;
  const auto plan = fuseGates(gateRefs(circuit), 4, options);
  ASSERT_EQ(plan.blocks.size(), 2u);
  EXPECT_EQ(plan.blocks[0].qubits, (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.blocks[1].qubits, (std::vector<int>{2, 3}));
}

TEST(FusionScheduler, DiagonalRunKeepsDiagonalBlock) {
  QCircuit<double> circuit(3);
  circuit.push_back(RotationZ<double>(0, 0.2));
  circuit.push_back(CZ<double>(0, 1));
  circuit.push_back(RotationZZ<double>(1, 2, 0.7));
  circuit.push_back(PauliZ<double>(2));

  FusionOptions options;
  options.maxQubits = 3;
  const auto plan = fuseGates(gateRefs(circuit), 3, options);
  ASSERT_EQ(plan.blocks.size(), 1u);
  EXPECT_TRUE(plan.blocks[0].diagonal);

  // One dense gate poisons the diagonal flag.
  circuit.push_back(Hadamard<double>(1));
  const auto mixed = fuseGates(gateRefs(circuit), 3, options);
  ASSERT_EQ(mixed.blocks.size(), 1u);
  EXPECT_FALSE(mixed.blocks[0].diagonal);
}

TEST(FusionScheduler, WiderThanWindowGatePassesThrough) {
  QCircuit<double> circuit(4);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(MCX<double>({0, 1, 2}, 3, {1, 1, 1}));  // 4 qubits
  circuit.push_back(Hadamard<double>(1));

  FusionOptions options;
  options.maxQubits = 2;
  const auto plan = fuseGates(gateRefs(circuit), 4, options);
  ASSERT_EQ(plan.blocks.size(), 3u);
  EXPECT_EQ(plan.blocks[1].qubits.size(), 4u);
  EXPECT_EQ(plan.blocks[1].gatesIn, 1u);
}

TEST(FusionScheduler, RejectsEmptyWindow) {
  const std::vector<GateRef<double>> none;
  FusionOptions options;
  options.maxQubits = 0;
  EXPECT_THROW(fuseGates(none, 2, options), InvalidArgumentError);
}

TEST(FusionScheduler, PlanMatrixMatchesCircuitUnitary) {
  // The block products must reproduce the circuit unitary exactly: apply
  // the plan to every basis column and compare against circuit.matrix().
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto circuit = qclab::test::randomCircuit<double>(4, 25, seed);
    const auto refs = gateRefs(circuit);
    const auto plan = fuseGates(refs, 4, FusionOptions{});
    EXPECT_LT(plan.blocks.size(), refs.size());

    const std::size_t dim = 16;
    for (std::size_t j = 0; j < dim; ++j) {
      std::vector<std::complex<double>> state(dim);
      state[j] = 1.0;
      applyFusionPlan(state, 4, plan);
      const auto u = circuit.matrix();
      for (std::size_t i = 0; i < dim; ++i) {
        EXPECT_NEAR(std::abs(state[i] - u(i, j)), 0.0, 1e-12);
      }
    }
  }
}

// ---- backend equivalence fuzz -----------------------------------------

template <typename T>
void expectFusedMatchesBackends(int nbQubits, int length, std::uint64_t seed,
                                T tolerance) {
  const auto circuit = qclab::test::randomCircuit<T>(nbQubits, length, seed);
  random::Rng rng(seed + 1000);
  const auto initial = qclab::test::randomState<T>(nbQubits, rng);

  const KernelBackend<T> kernel;
  const SparseKronBackend<T> sparse;
  SimulateOptions options;
  options.fusion = true;

  const auto viaKernel = circuit.simulate(initial, kernel);
  const auto viaSparse = circuit.simulate(initial, sparse);
  const auto viaFusion = circuit.simulate(initial, options);

  ASSERT_EQ(viaFusion.nbBranches(), 1u);
  qclab::test::expectStateNear(viaFusion.state(0), viaKernel.state(0),
                               tolerance);
  qclab::test::expectStateNear(viaFusion.state(0), viaSparse.state(0),
                               tolerance);
}

class FusionFuzzDouble : public ::testing::TestWithParam<int> {};

TEST_P(FusionFuzzDouble, AgreesWithKernelAndSparseBackends) {
  const int seed = GetParam();
  const int nbQubits = 6 + seed % 3;  // 6-8 qubits
  expectFusedMatchesBackends<double>(nbQubits, 60,
                                     static_cast<std::uint64_t>(seed), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionFuzzDouble, ::testing::Range(1, 9));

class FusionFuzzFloat : public ::testing::TestWithParam<int> {};

TEST_P(FusionFuzzFloat, AgreesWithKernelAndSparseBackends) {
  const int seed = GetParam();
  const int nbQubits = 6 + seed % 3;
  expectFusedMatchesBackends<float>(nbQubits, 60,
                                    static_cast<std::uint64_t>(seed), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionFuzzFloat, ::testing::Range(1, 9));

// ---- fusion window sweep ----------------------------------------------

class FusionWindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(FusionWindowSweep, EveryWindowSizeIsExact) {
  const auto circuit = qclab::test::randomCircuit<double>(6, 50, 77);
  const auto reference = circuit.simulate("000000");

  SimulateOptions options;
  options.fusion = true;
  options.fusionOptions.maxQubits = GetParam();
  const auto fused = circuit.simulate("000000", options);
  qclab::test::expectStateNear(fused.state(0), reference.state(0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Windows, FusionWindowSweep, ::testing::Range(1, 7));

// ---- structured workloads ---------------------------------------------

TEST(FusionSimulate, QftMatchesUnfused) {
  const auto circuit = qclab::algorithms::qft<double>(7);
  random::Rng rng(5);
  const auto initial = qclab::test::randomState<double>(7, rng);
  const auto reference = circuit.simulate(initial);

  SimulateOptions options;
  options.fusion = true;
  const auto fused = circuit.simulate(initial, options);
  qclab::test::expectStateNear(fused.state(0), reference.state(0), 1e-12);
}

TEST(FusionSimulate, NestedSubCircuitsCarryOffsets) {
  // A sub-circuit with its own offset: fused gate refs must apply the
  // accumulated offset, like applyTo does.
  QCircuit<double> inner(2, 1);
  inner.push_back(Hadamard<double>(0));
  inner.push_back(CX<double>(0, 1));
  QCircuit<double> root(4);
  root.push_back(Hadamard<double>(0));
  root.push_back(QCircuit<double>(inner));
  root.push_back(CX<double>(2, 3));

  const auto reference = root.simulate("0000");
  SimulateOptions options;
  options.fusion = true;
  const auto fused = root.simulate("0000", options);
  qclab::test::expectStateNear(fused.state(0), reference.state(0), 1e-12);
}

TEST(FusionSimulate, MeasurementsFlushAndBranchesMatch) {
  // H(0) CX(0,1) M(0) H(1): the measurement forks two branches; the fused
  // run after the fork must be applied to both.
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Measurement<double>(0));
  circuit.push_back(Hadamard<double>(1));
  circuit.push_back(TGate<double>(1));

  const auto reference = circuit.simulate("00");
  SimulateOptions options;
  options.fusion = true;
  const auto fused = circuit.simulate("00", options);

  ASSERT_EQ(fused.nbBranches(), reference.nbBranches());
  for (std::size_t b = 0; b < reference.nbBranches(); ++b) {
    EXPECT_EQ(fused.result(b), reference.result(b));
    EXPECT_NEAR(fused.probability(b), reference.probability(b), 1e-12);
    qclab::test::expectStateNear(fused.state(b), reference.state(b), 1e-12);
  }
}

TEST(FusionSimulate, ResetFlushesRun) {
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  circuit.push_back(Reset<double>(0));
  circuit.push_back(Hadamard<double>(0));

  const auto reference = circuit.simulate("00");
  SimulateOptions options;
  options.fusion = true;
  const auto fused = circuit.simulate("00", options);

  ASSERT_EQ(fused.nbBranches(), reference.nbBranches());
  for (std::size_t b = 0; b < reference.nbBranches(); ++b) {
    EXPECT_NEAR(fused.probability(b), reference.probability(b), 1e-12);
    qclab::test::expectStateNear(fused.state(b), reference.state(b), 1e-12);
  }
}

TEST(FusionBackendClass, FallsBackPerGateAndReportsName) {
  const FusionBackend<double> backend;
  EXPECT_STREQ(backend.name(), "fusion");
  EXPECT_EQ(backend.options().maxQubits, 4);

  // Per-gate application equals the plain kernels.
  const Hadamard<double> h(0);
  std::vector<std::complex<double>> state = {1.0, 0.0};
  std::vector<std::complex<double>> expected = state;
  backend.applyGate(state, 1, h);
  KernelBackend<double>().applyGate(expected, 1, h);
  qclab::test::expectStateNear(state, expected, 1e-15);

  // Run-level entry point fuses and applies in one call.
  QCircuit<double> circuit(2);
  circuit.push_back(Hadamard<double>(0));
  circuit.push_back(CX<double>(0, 1));
  std::vector<std::complex<double>> bell = {1.0, 0.0, 0.0, 0.0};
  backend.applyFused(bell, 2, gateRefs(circuit));
  const auto reference = circuit.simulate("00");
  qclab::test::expectStateNear(bell, reference.state(0), 1e-14);
}

}  // namespace
}  // namespace qclab::sim

/// \file qft_phase_estimation.cpp
/// \brief Extension example: the quantum Fourier transform and quantum
/// phase estimation, exercising nested circuits, custom matrix gates, and
/// the OpenQASM round trip.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  // --- QFT ---------------------------------------------------------------
  auto qft3 = algorithms::qft<T>(3);
  std::printf("3-qubit QFT:\n%s\n", qft3.draw().c_str());

  // The QFT of a basis state is a uniform superposition with linear phases.
  const auto simulation = qft3.simulate("001");
  const auto& amplitudes = simulation.state(0);
  std::printf("QFT|001> amplitudes (all |a| = 1/sqrt(8) = %.4f):\n",
              1.0 / std::sqrt(8.0));
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    std::printf("  |%zu>: %+.4f%+.4fi  (|a| = %.4f)\n", i,
                amplitudes[i].real(), amplitudes[i].imag(),
                std::abs(amplitudes[i]));
  }

  // Round trip through OpenQASM.
  const auto qasm = qft3.toQASM();
  const auto reparsed = io::parseQasm<T>(qasm);
  const auto distance = qft3.matrix().distanceMax(reparsed.matrix());
  std::printf("\nQASM round-trip max deviation: %.2e\n", distance);

  // --- QPE ---------------------------------------------------------------
  // Estimate the phase of the T gate (eigenvalue e^{i pi / 4} on |1>,
  // i.e. phi = 1/8) with 3 counting qubits: expect the exact result '001'.
  const auto tGate = qgates::TGate<T>(0).matrix();
  auto qpe = algorithms::phaseEstimation<T>(3, tGate);

  // Initial state: counting register |000>, target in eigenstate |1>.
  auto initial = dense::kron(basisState<T>("000"), basisState<T>("1"));
  const auto qpeSim = qpe.simulate(initial);

  std::printf("\nQPE of the T gate (phi = 1/8):\n");
  const auto results = qpeSim.results();
  const auto probabilities = qpeSim.probabilities();
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("  counting register '%s' -> phi = %.4f (p = %.4f)\n",
                results[i].c_str(),
                algorithms::phaseFromBits(results[i]), probabilities[i]);
  }
  return 0;
}

/// \file teleportation.cpp
/// \brief Quantum teleportation (paper §5.1): teleports
/// v = (1/sqrt(2), i/sqrt(2)) from qubit 0 to qubit 2 using a Bell pair and
/// mid-circuit measurements, then verifies the transfer with
/// reducedStatevector.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  // qtc = qclab.QCircuit(3); ... (paper §5.1)
  QCircuit<T> qtc(3);
  qtc.push_back(std::make_unique<qgates::CNOT<T>>(0, 1));
  qtc.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  qtc.push_back(std::make_unique<Measurement<T>>(0));
  qtc.push_back(std::make_unique<Measurement<T>>(1));
  qtc.push_back(std::make_unique<qgates::CNOT<T>>(1, 2));
  qtc.push_back(std::make_unique<qgates::CZ<T>>(0, 2));

  std::printf("Teleportation circuit:\n%s\n", qtc.draw().c_str());

  // v = [1/sqrt(2); 1i/sqrt(2)]; initial_state = kron(v, bell);
  const T h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<T>> v = {{h, 0.0}, {0.0, h}};
  const auto initialState = algorithms::teleportationInput(v);

  const auto simulation = qtc.simulate(initialState);

  std::printf("results      probabilities\n");
  const auto results = simulation.results();
  const auto probabilities = simulation.probabilities();
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("  '%s'      %.4f\n", results[i].c_str(), probabilities[i]);
  }

  // Verify teleportation on every branch: the reduced state of qubit 2 must
  // equal v regardless of the measured outcome.
  const auto states = simulation.states();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto reduced =
        reducedStatevector<T>(states[i], {0, 1}, results[i]);
    std::printf(
        "outcome '%s': reduced q2 state = (%+.4f%+.4fi, %+.4f%+.4fi)\n",
        results[i].c_str(), reduced[0].real(), reduced[0].imag(),
        reduced[1].real(), reduced[1].imag());
  }
  return 0;
}

/// \file algorithms_gallery.cpp
/// \brief Extension example: a tour of the remaining algorithm builders —
/// Bernstein-Vazirani, Deutsch-Jozsa, superdense coding, and W states —
/// mirroring the hands-on example style of the paper's §5.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  // --- Bernstein-Vazirani --------------------------------------------------
  const std::string secret = "10110";
  const auto bv = algorithms::bernsteinVazirani<T>(secret);
  const auto bvSim = bv.simulate(std::string(secret.size() + 1, '0'));
  std::printf("Bernstein-Vazirani: secret '%s' -> measured '%s' (p = %.4f)\n",
              secret.c_str(), bvSim.result(0).c_str(), bvSim.probability(0));

  // --- Deutsch-Jozsa -------------------------------------------------------
  const auto constant = algorithms::deutschJozsa<T>(
      4, algorithms::DeutschJozsaOracle::kConstantOne);
  const auto balanced = algorithms::deutschJozsa<T>(
      4, algorithms::DeutschJozsaOracle::kBalanced, "0110");
  std::printf("Deutsch-Jozsa: constant oracle -> '%s' (all zeros = constant)\n",
              constant.simulate("00000").result(0).c_str());
  std::printf("Deutsch-Jozsa: balanced oracle -> '%s' (nonzero = balanced)\n",
              balanced.simulate("00000").result(0).c_str());

  // --- superdense coding ---------------------------------------------------
  std::printf("superdense coding:");
  for (const std::string bits : {"00", "01", "10", "11"}) {
    const auto circuit = algorithms::superdenseCoding<T>(bits);
    std::printf("  %s->%s", bits.c_str(),
                circuit.simulate("00").result(0).c_str());
  }
  std::printf("\n");

  // --- W states -----------------------------------------------------------
  const int n = 4;
  const auto w = algorithms::wState<T>(n);
  std::printf("\nW-state circuit (n = %d):\n%s\n", n, w.draw().c_str());
  const auto state = w.simulate(std::string(n, '0')).state(0);
  std::printf("amplitudes (expect 1/sqrt(%d) = %.4f on single-excitation "
              "states):\n", n, 1.0 / std::sqrt(n));
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (std::abs(state[i]) > 1e-12) {
      std::printf("  |%s>: %.4f\n",
                  util::indexToBitstring(i, n).c_str(), std::abs(state[i]));
    }
  }
  std::printf("entanglement entropy of qubit 0: %.4f bits\n",
              density::entanglementEntropy(state, {0}));
  return 0;
}

/// \file error_correction.cpp
/// \brief Quantum error correction with the distance-3 repetition code
/// (paper §5.4): encode v = (1/sqrt(2), i/sqrt(2)) into three physical
/// qubits, inject a bit-flip, extract the syndrome with two ancillas, and
/// correct with multi-controlled X gates.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  // qec = qclab.QCircuit(5); -- built exactly as in the paper.
  QCircuit<T> qec(5);
  qec.push_back(std::make_unique<qgates::CNOT<T>>(0, 1));
  qec.push_back(std::make_unique<qgates::CNOT<T>>(0, 2));
  qec.push_back(std::make_unique<qgates::PauliX<T>>(0));  // bit-flip error
  qec.push_back(std::make_unique<qgates::CNOT<T>>(0, 3));
  qec.push_back(std::make_unique<qgates::CNOT<T>>(1, 3));
  qec.push_back(std::make_unique<qgates::CNOT<T>>(0, 4));
  qec.push_back(std::make_unique<qgates::CNOT<T>>(2, 4));
  qec.push_back(std::make_unique<Measurement<T>>(3));
  qec.push_back(std::make_unique<Measurement<T>>(4));
  qec.push_back(std::make_unique<qgates::MCX<T>>(std::vector<int>{3, 4}, 2,
                                                 std::vector<int>{0, 1}));
  qec.push_back(std::make_unique<qgates::MCX<T>>(std::vector<int>{3, 4}, 1,
                                                 std::vector<int>{1, 0}));
  qec.push_back(std::make_unique<qgates::MCX<T>>(std::vector<int>{3, 4}, 0,
                                                 std::vector<int>{1, 1}));

  std::printf("QEC circuit:\n%s\n", qec.draw().c_str());

  // |v> = (1/sqrt(2), i/sqrt(2)) on qubit 0, everything else |0>.
  const T h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<T>> v = {{h, 0.0}, {0.0, h}};
  std::vector<std::complex<T>> initial(1, std::complex<T>(1));
  initial = dense::kron(v, dense::kron(basisState<T>("00"),
                                       basisState<T>("00")));

  const auto simulation = qec.simulate(initial);

  const auto results = simulation.results();
  const auto probabilities = simulation.probabilities();
  std::printf("syndrome results:\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("  '%s' with probability %.4f\n", results[i].c_str(),
                probabilities[i]);
  }

  // After correction the data qubits are back in the logical state
  // alpha|000> + beta|111>; check by reducing over the (measured) ancillas.
  const auto states = simulation.states();
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto data = reducedStatevector<T>(states[i], {3, 4}, results[i]);
    std::printf(
        "logical state amplitudes after correction (outcome '%s'):\n"
        "  <000| = %+.4f%+.4fi,  <111| = %+.4f%+.4fi\n",
        results[i].c_str(), data[0].real(), data[0].imag(),
        data[7].real(), data[7].imag());
  }

  // Sweep: the code corrects a bit-flip on any data qubit.
  std::printf("\nsyndrome sweep (error qubit -> measured syndrome):\n");
  for (int errorQubit = -1; errorQubit <= 2; ++errorQubit) {
    auto demo = algorithms::repetitionCodeDemo<T>(errorQubit);
    const auto sweep = demo.simulate(initial);
    std::printf("  error on %2d -> syndrome '%s' (expected '%s')\n",
                errorQubit, sweep.results()[0].c_str(),
                algorithms::expectedSyndrome(errorQubit).c_str());
  }
  return 0;
}

/// \file grover.cpp
/// \brief Grover's algorithm (paper §5.3): modular construction of the
/// oracle and diffuser as sub-circuits, combined into the full search
/// circuit with asBlock drawing, for the 2-qubit search of |11> and a
/// larger 5-qubit search.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  // --- the paper's 2-qubit search for |11> --------------------------------
  QCircuit<T> oracle(2);
  oracle.push_back(std::make_unique<qgates::CZ<T>>(0, 1));

  QCircuit<T> diffuser(2);
  diffuser.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  diffuser.push_back(std::make_unique<qgates::Hadamard<T>>(1));
  diffuser.push_back(std::make_unique<qgates::PauliZ<T>>(0));
  diffuser.push_back(std::make_unique<qgates::PauliZ<T>>(1));
  diffuser.push_back(std::make_unique<qgates::CZ<T>>(0, 1));
  diffuser.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  diffuser.push_back(std::make_unique<qgates::Hadamard<T>>(1));

  std::printf("oracle:\n%s\n", oracle.draw().c_str());
  std::printf("diffuser:\n%s\n", diffuser.draw().c_str());

  // oracle.asBlock; diffuser.asBlock;
  oracle.asBlock("oracle");
  diffuser.asBlock("diffuser");

  QCircuit<T> gc(2);
  gc.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  gc.push_back(std::make_unique<qgates::Hadamard<T>>(1));
  gc.push_back(std::make_unique<QCircuit<T>>(oracle));
  gc.push_back(std::make_unique<QCircuit<T>>(diffuser));
  gc.push_back(std::make_unique<Measurement<T>>(0));
  gc.push_back(std::make_unique<Measurement<T>>(1));

  std::printf("Grover circuit (blocks):\n%s\n", gc.draw().c_str());

  const auto simulation = gc.simulate("00");
  const auto results = simulation.results();
  const auto probabilities = simulation.probabilities();
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("result '%s' with probability %.4f\n", results[i].c_str(),
                probabilities[i]);
  }

  // --- generalized search: 5 qubits, marked state |10110> -----------------
  const std::string marked = "10110";
  const int iterations = algorithms::groverIterations(5);
  auto big = algorithms::grover<T>(marked, iterations);
  const auto bigSim = big.simulate(std::string(5, '0'));

  double successProbability = 0.0;
  const auto bigResults = bigSim.results();
  const auto bigProbabilities = bigSim.probabilities();
  for (std::size_t i = 0; i < bigResults.size(); ++i) {
    if (bigResults[i] == marked) successProbability = bigProbabilities[i];
  }
  std::printf(
      "\n5-qubit search for |%s>: %d iterations, "
      "P(success) = %.4f (analytic %.4f)\n",
      marked.c_str(), iterations, successProbability,
      algorithms::groverSuccessProbability(5, iterations));
  return 0;
}

/// \file sampling_methods.cpp
/// \brief Extension example: three ways to obtain measurement statistics
/// for the same circuit, with their cost trade-offs —
///   1. branching simulation + counts (paper §3.3: exact branch states),
///   2. direct |amplitude|^2 sampling (terminal measurements only),
///   3. stabilizer shots (Clifford circuits only, polynomial scaling).

#include <chrono>
#include <cstdio>

#include "qclab/qclab.hpp"

namespace {

double milliseconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using T = double;
  using namespace qclab;

  const int n = 12;
  const std::uint64_t shots = 10000;
  auto ghz = algorithms::ghz<T>(n);
  std::printf("GHZ(%d), %llu shots, three sampling routes:\n\n", n,
              static_cast<unsigned long long>(shots));

  // 1. Branching simulation with Measurement objects.
  {
    auto circuit = ghz;
    for (int q = 0; q < n; ++q) circuit.push_back(Measurement<T>(q));
    const auto start = std::chrono::steady_clock::now();
    const auto simulation = circuit.simulate(std::string(n, '0'));
    const auto histogram = simulation.countsMap(shots, 1);
    std::printf("1. branching + countsMap  (%6.2f ms, %zu branches):\n",
                milliseconds(start), simulation.nbBranches());
    for (const auto& [outcome, count] : histogram) {
      std::printf("     '%s': %llu\n", outcome.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }

  // 2. Direct sampling from the final state (no collapse, no branching).
  {
    const auto start = std::chrono::steady_clock::now();
    const auto state = ghz.simulate(std::string(n, '0')).state(0);
    random::Rng rng(1);
    const auto counts = sampleStateCounts(state, shots, rng);
    std::printf("2. direct sampling        (%6.2f ms):\n",
                milliseconds(start));
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) {
        std::printf("     '%s': %llu\n",
                    util::indexToBitstring(i, n).c_str(),
                    static_cast<unsigned long long>(counts[i]));
      }
    }
  }

  // 3. Stabilizer shots (GHZ is Clifford): polynomial in n.
  {
    auto circuit = ghz;
    for (int q = 0; q < n; ++q) circuit.push_back(Measurement<T>(q));
    const auto start = std::chrono::steady_clock::now();
    random::Rng rng(1);
    // Per-shot tableaus: still fast, and scales to thousands of qubits.
    std::map<std::string, std::uint64_t> histogram;
    for (int shot = 0; shot < 200; ++shot) {
      stabilizer::Tableau tableau(n);
      ++histogram[stabilizer::simulateShot(circuit, tableau, rng)];
    }
    std::printf("3. stabilizer (200 shots) (%6.2f ms):\n",
                milliseconds(start));
    for (const auto& [outcome, count] : histogram) {
      std::printf("     '%s': %llu\n", outcome.c_str(),
                  static_cast<unsigned long long>(count));
    }
    // And the tableau gives exact Pauli expectations without any shots:
    stabilizer::Tableau tableau(n);
    random::Rng expectationRng(2);
    stabilizer::simulateShot(ghz, tableau, expectationRng);
    std::printf("   exact <X...X> = %+d, <Z...ZI...I> = %+d\n",
                tableau.expectation(std::string(n, 'X')),
                tableau.expectation("ZZ" + std::string(n - 2, 'I')));
  }
  return 0;
}

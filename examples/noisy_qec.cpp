/// \file noisy_qec.cpp
/// \brief Extension example: the repetition code of paper §5.4 made
/// quantitative with the noise module — logical vs physical error rate.
///
/// Prepares the logical state, applies an i.i.d. bit-flip channel of
/// strength p to every data qubit, runs syndrome extraction + correction,
/// and reports the logical error 1 - F against the analytic 3p^2 - 2p^3.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;
  using namespace qclab::noise;

  const T h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<T>> v = {{h, 0.0}, {0.0, h}};
  std::vector<std::complex<T>> logical(8);
  logical[0] = v[0];
  logical[7] = v[1];

  std::printf("repetition code under bit-flip noise "
              "(logical error ~ 3p^2 - 2p^3):\n");
  std::printf("%8s %14s %14s %14s\n", "p", "unprotected", "logical",
              "analytic");
  for (double p : {0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}) {
    // Unprotected qubit.
    DensityMatrix<T> bare(v);
    bare.applyChannel(KrausChannel<T>::bitFlip(p), {0});
    const double bareError = 1.0 - bare.fidelityWith(v);

    // Encoded qubit: encode, noise on data qubits, correct.
    DensityMatrix<T> encoded(dense::kron(v, basisState<T>("0000")));
    simulateDensity(algorithms::repetitionEncoder<T>(5), encoded);
    for (int q = 0; q < 3; ++q) {
      encoded.applyChannel(KrausChannel<T>::bitFlip(p), {q});
    }
    simulateDensity(algorithms::repetitionSyndromeAndCorrect<T>(), encoded);
    const auto dataRho = density::partialTrace(encoded.matrix(), 5, {3, 4});
    const double logicalError = 1.0 - density::fidelity(logical, dataRho);

    const double analytic = 3 * p * p - 2 * p * p * p;
    std::printf("%8.3f %14.6f %14.6f %14.6f\n", p, bareError, logicalError,
                analytic);
  }

  // Noisy gates end to end: Bell-pair fidelity under depolarizing noise.
  std::printf("\nBell-pair fidelity with depolarizing gate noise:\n");
  std::printf("%8s %12s %12s\n", "p", "fidelity", "purity");
  QCircuit<T> bell(2);
  bell.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  bell.push_back(std::make_unique<qgates::CX<T>>(0, 1));
  for (double p : {0.0, 0.01, 0.05, 0.1, 0.2}) {
    const auto rho =
        simulateDensity(bell, "00", NoiseModel<T>::depolarizing(p));
    std::printf("%8.2f %12.6f %12.6f\n", p,
                rho.fidelityWith(algorithms::bellState<T>()), rho.purity());
  }
  return 0;
}

/// \file quickstart.cpp
/// \brief The paper's introductory circuit (1): a Hadamard, a CNOT, and two
/// measurements, simulated from |00> (paper §2-§4).
///
/// Demonstrates circuit construction, terminal drawing, OpenQASM and LaTeX
/// export, and simulation with branch inspection.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  // circuit = qclab.QCircuit(2);
  QCircuit<T> circuit(2);

  // circuit.push_back(qclab.qgates.Hadamard(0));
  // circuit.push_back(qclab.qgates.CNOT(0,1));
  circuit.push_back(std::make_unique<qgates::Hadamard<T>>(0));
  circuit.push_back(std::make_unique<qgates::CNOT<T>>(0, 1));

  // circuit.push_back(qclab.Measurement(0));
  // circuit.push_back(qclab.Measurement(1));
  circuit.push_back(std::make_unique<Measurement<T>>(0));
  circuit.push_back(std::make_unique<Measurement<T>>(1));

  std::printf("Circuit diagram:\n%s\n", circuit.draw().c_str());
  std::printf("OpenQASM export:\n%s\n", circuit.toQASM().c_str());

  // simulation = circuit.simulate('00');
  const auto simulation = circuit.simulate("00");

  std::printf("results      probabilities\n");
  const auto results = simulation.results();
  const auto probabilities = simulation.probabilities();
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("  '%s'      %.4f\n", results[i].c_str(), probabilities[i]);
  }

  std::printf("\ncounts over 1000 shots (seed 1):\n");
  for (const auto& [result, count] : simulation.countsMap(1000, 1)) {
    std::printf("  '%s': %llu\n", result.c_str(),
                static_cast<unsigned long long>(count));
  }

  std::printf("\nLaTeX export (toTex):\n%s", circuit.toTex().c_str());
  return 0;
}

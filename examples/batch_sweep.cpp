/// \file batch_sweep.cpp
/// \brief Parameter sweeps with the batched execution engine: compile a
/// QAOA circuit SHAPE once, then run many angle instances against it by
/// parameter rebinding — instead of rebuilding and re-planning per point.
///
/// Demonstrates ParameterBinding slot order, shape hashing (which
/// members an engine accepts), the cached parameter-free prefix, and the
/// bit-identity guarantee against standalone simulate.

#include <cstdio>
#include <cstring>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  // A small MaxCut instance: ring of 8 vertices, QAOA depth p=2.
  algorithms::Graph graph;
  graph.nbVertices = 8;
  for (int v = 0; v < 8; ++v) graph.edges.push_back({v, (v + 1) % 8});
  const auto prototype =
      algorithms::qaoaCircuit<T>(graph, {T(0.4), T(0.7)}, {T(0.3), T(0.6)});

  // Compile the shape once: fusion plan, block schedule, and the cached
  // parameter-free prefix (the leading Hadamard layer never changes
  // across members, so it is swept exactly once).
  sim::BatchedSimulation<T> engine(prototype);
  std::printf("shape hash      : %016llx\n",
              static_cast<unsigned long long>(engine.shapeHash()));
  std::printf("parameters      : %zu per member\n", engine.nbParameters());
  std::printf("cached prefix   : %zu plans + %zu blocks\n",
              engine.prefixPlanCount(), engine.prefixBlockCount());

  // A 5x5 grid over (gamma, beta) scaling factors: 25 members, all the
  // same shape.  Parameter vectors use the engine's slot order; the
  // easiest way to produce them is parametersOf on a bound instance.
  std::vector<std::vector<T>> parameterSets;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      const T g = T(0.2) * (i + 1);
      const T b = T(0.15) * (j + 1);
      const auto instance = algorithms::qaoaCircuit<T>(
          graph, {g, T(1.5) * g}, {b, T(0.5) * b});
      parameterSets.push_back(engine.parametersOf(instance));
    }
  }

  // One call executes the whole sweep (OpenMP across members).
  auto results = engine.run(parameterSets);

  // Score each member: MaxCut expectation value of the cut observable.
  const auto observable = algorithms::maxCutHamiltonian<T>(graph);
  std::size_t best = 0;
  double bestValue = -1.0;
  std::printf("\n  member   <cut>\n");
  for (std::size_t m = 0; m < results.size(); ++m) {
    const double value = static_cast<double>(
        observable.expectation(results[m].branches().front().state));
    if (value > bestValue) {
      bestValue = value;
      best = m;
    }
    if (m % 6 == 0) std::printf("    %2zu     %.4f\n", m, value);
  }
  std::printf("  best member %zu: <cut> = %.4f\n", best, bestValue);

  // The guarantee: every member is BIT-identical to binding the same
  // parameters on a clone and simulating standalone with the engine's
  // fusion options.
  QCircuit<T> check(prototype);
  ParameterBinding<T> binding(check);
  binding.bind(parameterSets[best]);
  SimulateOptions options;
  options.fusion = true;
  options.fusionOptions = sim::BatchOptions{}.fusionOptions;
  const auto standalone = check.simulate(std::string(8, '0'), options);
  const auto& a = results[best].branches().front().state;
  const auto& b = standalone.branches().front().state;
  const bool identical =
      std::memcmp(a.data(), b.data(), a.size() * sizeof(a[0])) == 0;
  std::printf("\nbit-identical to standalone simulate: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}

/// \file ising_observables.cpp
/// \brief Extension example: measuring Pauli observables on circuit states.
///
/// Builds the transverse-field Ising Hamiltonian, prepares trial states
/// with parameterized circuits, evaluates energies and variances, applies
/// the transpiler to a Trotter-style circuit, and reports entanglement
/// entropies — the "quantum algorithm research" workflow the paper
/// positions QCLAB for (§1, F3C compiler).

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  const int n = 6;
  const auto hamiltonian = isingHamiltonian<T>(n, 1.0, 0.5);
  std::printf("Transverse-field Ising chain, n = %d, J = 1, h = 0.5\n", n);
  std::printf("Hamiltonian terms: %zu\n\n", hamiltonian.nbTerms());

  // Trial states: product state |0...0>, GHZ, and a rotated ansatz.
  const auto zero = basisState<T>(std::string(n, '0'));
  std::printf("%-24s E = %+9.5f   Var = %9.5f\n", "|000000>",
              hamiltonian.expectation(zero), hamiltonian.variance(zero));

  const auto ghzState = algorithms::ghz<T>(n).simulate(zero).state(0);
  std::printf("%-24s E = %+9.5f   Var = %9.5f\n", "GHZ",
              hamiltonian.expectation(ghzState),
              hamiltonian.variance(ghzState));

  // One-parameter ansatz: RY(theta) on every site + entangling CX ladder.
  std::printf("\nRY-ladder ansatz energy sweep:\n  theta      E\n");
  for (double theta = 0.0; theta <= 0.61; theta += 0.15) {
    QCircuit<T> ansatz(n);
    for (int q = 0; q < n; ++q) {
      ansatz.push_back(qgates::RotationY<T>(q, theta));
    }
    for (int q = 0; q + 1 < n; ++q) {
      ansatz.push_back(qgates::CX<T>(q, q + 1));
    }
    const auto state = ansatz.simulate(zero).state(0);
    std::printf("  %.2f   %+9.5f\n", theta, hamiltonian.expectation(state));
  }

  // Trotter-style circuit + transpiler ablation.
  QCircuit<T> trotter(n);
  random::Rng rng(3);
  for (int layer = 0; layer < 4; ++layer) {
    for (int q = 0; q < n; ++q) {
      trotter.push_back(qgates::RotationX<T>(q, 0.05));
      trotter.push_back(qgates::RotationX<T>(q, 0.05));
    }
    for (int q = 0; q + 1 < n; ++q) {
      trotter.push_back(qgates::RotationZZ<T>(q, q + 1, 0.1));
      trotter.push_back(qgates::RotationZZ<T>(q, q + 1, 0.1));
    }
  }
  const auto optimized = transpile::optimize(trotter);
  std::printf("\nTrotter circuit transpilation: %zu gates -> %zu gates\n",
              trotter.nbObjectsRecursive(), optimized.nbObjectsRecursive());
  const auto a = trotter.simulate(zero).state(0);
  const auto b = optimized.simulate(zero).state(0);
  std::printf("max state deviation after optimization: %.2e\n",
              dense::distanceMax(a, b));

  // Entanglement growth under the Trotter evolution.
  std::printf("\nentanglement entropy across the middle cut:\n");
  std::printf("  |0...0>          %.4f bits\n",
              density::entanglementEntropy(zero, {0, 1, 2}));
  std::printf("  after Trotter    %.4f bits\n",
              density::entanglementEntropy(a, {0, 1, 2}));
  std::printf("  GHZ              %.4f bits\n",
              density::entanglementEntropy(ghzState, {0, 1, 2}));
  return 0;
}

/// \file tomography.cpp
/// \brief Single-qubit state tomography (paper §5.2): estimates the density
/// matrix of v = (1/sqrt(2), i/sqrt(2)) from 1000 shots in each of the X, Y,
/// Z bases and reports the trace distance to the true density matrix.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  const T h = 1.0 / std::sqrt(2.0);
  const std::vector<std::complex<T>> v = {{h, 0.0}, {0.0, h}};

  // shots = 1000; rng(1);
  const auto result = algorithms::tomography1Qubit(v, 1000, 1);

  const char* basisNames[3] = {"X", "Y", "Z"};
  for (int b = 0; b < 3; ++b) {
    std::printf("counts_%s = [%llu, %llu]\n", basisNames[b],
                static_cast<unsigned long long>(result.counts[b][0]),
                static_cast<unsigned long long>(result.counts[b][1]));
  }
  std::printf("S = (%.3f, %.3f, %.3f, %.3f)\n", result.coefficients[0],
              result.coefficients[1], result.coefficients[2],
              result.coefficients[3]);

  std::printf("estimated density matrix:\n");
  for (int i = 0; i < 2; ++i) {
    std::printf("  [%+.3f%+.3fi  %+.3f%+.3fi]\n",
                result.estimate(i, 0).real(), result.estimate(i, 0).imag(),
                result.estimate(i, 1).real(), result.estimate(i, 1).imag());
  }

  const auto trueRho = density::densityMatrix(v);
  std::printf("true density matrix:\n");
  for (int i = 0; i < 2; ++i) {
    std::printf("  [%+.3f%+.3fi  %+.3f%+.3fi]\n", trueRho(i, 0).real(),
                trueRho(i, 0).imag(), trueRho(i, 1).real(),
                trueRho(i, 1).imag());
  }

  std::printf("trace distance = %.4f\n",
              density::traceDistance(trueRho, result.estimate));
  std::printf("fidelity       = %.4f\n",
              density::fidelity(trueRho, result.estimate));
  return 0;
}

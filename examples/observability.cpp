/// \file observability.cpp
/// \brief Instrumenting a simulation with qclab::obs (README
/// "Observability"): run Grover search through InstrumentedBackend, print
/// the text report, and export
///   - grover_trace.json   — Chrome trace_event timeline (open in
///                           about:tracing or https://ui.perfetto.dev)
///   - BENCH_grover_obs.json — machine-readable counters + timings.

#include <iostream>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;

  // Fresh counters and a live tracer for this run.
  obs::metrics().reset();
  obs::tracer().clear();
  obs::tracer().enable();

  // A 5-qubit Grover search, metered gate by gate.
  const std::string marked = "11111";
  const auto circuit =
      algorithms::grover<T>(marked, algorithms::groverIterations(5));
  const obs::InstrumentedBackend<T> backend;  // wraps the kernel backend
  const auto simulation = circuit.simulate("00000", backend);
  const auto counts = simulation.countsMap(1000, /*seed=*/7);

  double success = 0.0;
  for (std::size_t i = 0; i < simulation.nbBranches(); ++i) {
    if (simulation.result(i) == marked) success = simulation.probability(i);
  }
  std::cout << "P(" << marked << ") = " << success << ", counts[" << marked
            << "] = " << counts.at(marked) << "/1000\n\n";

  // 1. Human-readable aggregate report.
  obs::Report report("grover_n5");
  std::cout << report.text();

  // 2. Chrome trace_event timeline of every gate span.
  if (obs::tracer().writeChromeTrace("grover_trace.json")) {
    std::cout << "\nwrote grover_trace.json ("
              << obs::tracer().nbEvents() << " spans)\n";
  }

  // 3. Machine-readable metrics in the BENCH_*.json shape.
  if (report.writeJson("BENCH_grover_obs.json")) {
    std::cout << "wrote BENCH_grover_obs.json\n";
  }

  obs::tracer().disable();
  return 0;
}

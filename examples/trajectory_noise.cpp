/// \file trajectory_noise.cpp
/// \brief Extension example: Monte Carlo trajectory simulation of noisy
/// circuits — the stochastic unravelling that opens noisy simulation at
/// qubit counts where the 4^n density matrix no longer fits.
///
/// Part 1 cross-validates trajectories against the exact density-matrix
/// diagonal on a small circuit.  Part 2 shows the O(1/sqrt(N)) Monte
/// Carlo convergence of an observable mean.  Part 3 runs a 20-qubit GHZ
/// chain under depolarizing gate noise — far beyond density-matrix reach.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;
  using namespace qclab::noise;

  // --- Part 1: trajectories converge to the density-matrix diagonal ---
  QCircuit<T> small(3);
  small.push_back(qgates::Hadamard<T>(0));
  small.push_back(qgates::CX<T>(0, 1));
  small.push_back(qgates::CX<T>(1, 2));
  small.push_back(Measurement<T>(0));

  NoiseModel<T> model;
  model.gateNoise = KrausChannel<T>::depolarizing(0.05);
  model.measurementNoise = KrausChannel<T>::readout(0.02);

  const auto rho = simulateDensity(small, "000", model);
  const auto exact = rho.probabilities({0, 1, 2});

  TrajectoryOptions options;
  options.seed = 42;
  options.nbTrajectories = 20000;
  options.marginalQubits = {0, 1, 2};
  const TrajectorySimulator<T> simulator(small, model, options);
  const auto sampled = simulator.run("000").probabilities();

  std::printf("3-qubit GHZ under depolarizing(0.05) + readout(0.02):\n");
  std::printf("%10s %12s %12s\n", "outcome", "density", "trajectory");
  for (std::size_t i = 0; i < exact.size(); ++i) {
    std::printf("%10zu %12.4f %12.4f\n", i, exact[i], sampled[i]);
  }

  // --- Part 2: Monte Carlo convergence of <Z0> -----------------------
  Observable<T> z0(3);
  z0.add("ZII", 1.0);
  const double reference = [&] {
    // Diagonal observable: read <Z0> off the exact marginal.
    double value = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      value += (i < 4 ? 1.0 : -1.0) * exact[i];
    }
    return value;
  }();
  std::printf("\n<Z0> convergence (exact %+.4f):\n", reference);
  std::printf("%8s %12s %12s\n", "N", "estimate", "|error|");
  for (std::size_t n : {16, 64, 256, 1024, 4096}) {
    TrajectoryOptions sweep;
    sweep.seed = 7;
    sweep.nbTrajectories = n;
    const TrajectorySimulator<T> estimator(small, model, sweep);
    const double mean = estimator.run("000", z0).expectation();
    std::printf("%8zu %+12.4f %12.4f\n", n, mean,
                std::abs(mean - reference));
  }

  // --- Part 3: 20 qubits — out of density-matrix reach ---------------
  const int n = 20;
  QCircuit<T> ghz(n);
  ghz.push_back(qgates::Hadamard<T>(0));
  for (int q = 1; q < n; ++q) ghz.push_back(qgates::CX<T>(q - 1, q));
  for (int q = 0; q < n; ++q) ghz.push_back(Measurement<T>(q));

  NoiseModel<T> weak;
  weak.gateNoise = KrausChannel<T>::depolarizing(1e-3);

  TrajectoryOptions big;
  big.seed = 2026;
  big.nbTrajectories = 64;
  const TrajectorySimulator<T> engine(ghz, weak, big);
  const auto result = engine.run(std::string(n, '0'));

  std::size_t allZeros = 0, allOnes = 0;
  for (const auto& outcome : result.results()) {
    if (outcome == std::string(n, '0')) ++allZeros;
    if (outcome == std::string(n, '1')) ++allOnes;
  }
  std::printf("\n20-qubit GHZ, depolarizing(1e-3), %zu trajectories:\n",
              big.nbTrajectories);
  std::printf("  all-zeros outcomes: %zu\n", allZeros);
  std::printf("  all-ones  outcomes: %zu\n", allOnes);
  std::printf("  corrupted outcomes: %zu\n",
              big.nbTrajectories - allZeros - allOnes);
  std::printf("  (a density matrix at n = 20 would need %.1f TiB)\n",
              16.0 * std::pow(2.0, 2.0 * n) / std::pow(2.0, 40.0));
  return 0;
}

/// \file compilers.cpp
/// \brief Extension example: the compiler-style features the paper's
/// ecosystem builds on QCLAB — FABLE block encodings with compression,
/// multiplexed rotations, quantum counting, and QAOA for MaxCut.

#include <cstdio>

#include "qclab/qclab.hpp"

int main() {
  using T = double;
  using namespace qclab;
  using namespace qclab::algorithms;

  // --- FABLE block encoding -------------------------------------------------
  dense::Matrix<T> a(4, 4);
  random::Rng rng(1);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = std::complex<T>(rng.uniform(-1.0, 1.0));
    }
  }
  const auto encoding = fable(a);
  const auto block = encodedBlock(encoding, 4);
  std::printf("FABLE block encoding of a random 4x4 matrix "
              "(alpha = %.0f, %d qubits, %zu gates):\n",
              encoding.alpha, encoding.circuit.nbQubits(),
              encoding.circuit.nbObjectsRecursive());
  std::printf("  max |block - A| = %.2e\n", block.distanceMax(a));

  dense::Matrix<T> structured(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) structured(i, j) = {0.25, 0.0};
  }
  const auto compressed = fable(structured, T(1e-10));
  std::printf("  constant matrix compresses to %zu gates\n\n",
              compressed.circuit.nbObjectsRecursive());

  // --- quantum counting ------------------------------------------------------
  const auto counting = quantumCounting<T>(3, {"01", "10"});
  std::printf("quantum counting over {01, 10} in a 4-state space:\n"
              "  register '%s' -> theta = %.4f -> M_est = %.2f (true 2)\n\n",
              counting.bits.c_str(), counting.theta,
              counting.estimatedCount);

  // --- QAOA MaxCut -----------------------------------------------------------
  const Graph ring{5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}};
  const int optimum = maxCutBruteForce(ring);
  const auto [gamma, beta, value] = qaoaGridSearch<T>(ring, 16);
  std::printf("QAOA (p = 1) on the 5-ring (max cut = %d):\n", optimum);
  std::printf("  best (gamma, beta) = (%.3f, %.3f), expected cut = %.3f, "
              "ratio = %.3f\n",
              gamma, beta, value, value / optimum);

  const auto circuit = qaoaCircuit<T>(ring, {gamma}, {beta});
  std::printf("  circuit: %zu gates, depth %d\n",
              circuit.nbObjectsRecursive(), circuit.depth());
  return 0;
}
